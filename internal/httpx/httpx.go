// Package httpx is the minimal HTTP/1.1 implementation the case studies
// need: request/response serialization and parsing (content-length and
// chunked bodies), a server loop for Browsix processes (the meme server,
// §5.1.1), and pure building blocks the kernel-side XHR API reuses
// (§4.1: Browsix "replaces several native modules, like the module for
// parsing and generating HTTP responses and requests, with pure
// JavaScript implementations").
package httpx

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// Request is an HTTP request.
type Request struct {
	Method string
	Path   string
	Proto  string
	Header map[string]string
	Body   []byte
}

// Response is an HTTP response.
type Response struct {
	Status     int
	StatusText string
	Header     map[string]string
	Body       []byte
}

// statusText covers the codes the system emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// canonical header iteration order for deterministic output.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteRequest serializes a request with a Content-Length body. No
// Connection header is emitted unless the caller sets one — HTTP/1.1
// connections default to keep-alive, which the event-loop server and
// the load-generator swarm depend on; one-shot clients (Instance.Fetch)
// set Connection: close explicitly.
func WriteRequest(r *Request) []byte {
	var sb strings.Builder
	path := r.Path
	if path == "" {
		path = "/"
	}
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", r.Method, path)
	hdr := map[string]string{"Host": "localhost"}
	for k, v := range r.Header {
		hdr[k] = v
	}
	if len(r.Body) > 0 {
		hdr["Content-Length"] = strconv.Itoa(len(r.Body))
	}
	for _, k := range sortedKeys(hdr) {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, hdr[k])
	}
	sb.WriteString("\r\n")
	out := append([]byte(sb.String()), r.Body...)
	return out
}

// WriteResponse serializes a response. If resp.Header sets
// Transfer-Encoding: chunked the body is chunk-encoded (the paper notes
// the XHR layer handles "potentially chunked" responses); otherwise a
// Content-Length header is emitted, so every response is self-framing
// and keep-alive connections never need close-delimited bodies. As with
// WriteRequest, no Connection header is forced: callers that close set
// it themselves.
func WriteResponse(r *Response) []byte {
	var sb strings.Builder
	text := r.StatusText
	if text == "" {
		text = statusText(r.Status)
	}
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", r.Status, text)
	hdr := map[string]string{}
	for k, v := range r.Header {
		hdr[k] = v
	}
	chunked := strings.EqualFold(hdr["Transfer-Encoding"], "chunked")
	if !chunked {
		hdr["Content-Length"] = strconv.Itoa(len(r.Body))
	}
	for _, k := range sortedKeys(hdr) {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, hdr[k])
	}
	sb.WriteString("\r\n")
	if !chunked {
		return append([]byte(sb.String()), r.Body...)
	}
	out := []byte(sb.String())
	const chunkSize = 4096
	for off := 0; off < len(r.Body); off += chunkSize {
		end := off + chunkSize
		if end > len(r.Body) {
			end = len(r.Body)
		}
		out = append(out, []byte(fmt.Sprintf("%x\r\n", end-off))...)
		out = append(out, r.Body[off:end]...)
		out = append(out, '\r', '\n')
	}
	out = append(out, []byte("0\r\n\r\n")...)
	return out
}

// ReadFunc supplies stream bytes: it returns up to n bytes, empty at EOF.
type ReadFunc func(n int) ([]byte, abi.Errno)

// reader buffers a ReadFunc for incremental parsing. A nil read with
// eof set parses from a fixed buffer (the ParseBuffered* entry points).
type reader struct {
	read ReadFunc
	buf  []byte
	// scan marks how far buf has already been searched for '\n': bytes
	// before it can never contain one. Without it, a header arriving in
	// single-byte fills re-scans the whole buffer per fill — O(n²).
	scan int
	eof  bool
}

func (rd *reader) fill() abi.Errno {
	if rd.eof {
		return abi.OK
	}
	b, err := rd.read(16 * 1024)
	if err != abi.OK {
		return err
	}
	if len(b) == 0 {
		rd.eof = true
		return abi.OK
	}
	rd.buf = append(rd.buf, b...)
	return abi.OK
}

// line reads through the next CRLF (or LF) without re-scanning already
// searched bytes or converting the buffer to a string per attempt.
func (rd *reader) line() (string, abi.Errno) {
	for {
		if i := bytes.IndexByte(rd.buf[rd.scan:], '\n'); i >= 0 {
			i += rd.scan
			end := i
			for end > 0 && rd.buf[end-1] == '\r' {
				end--
			}
			line := string(rd.buf[:end])
			rd.buf = rd.buf[i+1:]
			rd.scan = 0
			return line, abi.OK
		}
		rd.scan = len(rd.buf)
		if rd.eof {
			return "", abi.EIO
		}
		if err := rd.fill(); err != abi.OK {
			return "", err
		}
	}
}

// take reads exactly n bytes.
func (rd *reader) take(n int) ([]byte, abi.Errno) {
	for len(rd.buf) < n {
		if rd.eof {
			return nil, abi.EIO
		}
		if err := rd.fill(); err != abi.OK {
			return nil, err
		}
	}
	out := rd.buf[:n]
	rd.buf = rd.buf[n:]
	rd.scan = 0
	return out, abi.OK
}

// rest drains to EOF.
func (rd *reader) rest() ([]byte, abi.Errno) {
	for !rd.eof {
		if err := rd.fill(); err != abi.OK {
			return nil, err
		}
	}
	out := rd.buf
	rd.buf = nil
	rd.scan = 0
	return out, abi.OK
}

// readHeaders parses "K: V" lines until the blank line.
func (rd *reader) readHeaders() (map[string]string, abi.Errno) {
	hdr := map[string]string{}
	for {
		line, err := rd.line()
		if err != abi.OK {
			return nil, err
		}
		if line == "" {
			return hdr, abi.OK
		}
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, abi.EINVAL
		}
		hdr[textprotoCanon(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
}

// textprotoCanon canonicalizes a header name (Content-Length form).
func textprotoCanon(s string) string {
	parts := strings.Split(strings.ToLower(s), "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "-")
}

// readBody consumes a message body per the headers.
func (rd *reader) readBody(hdr map[string]string, isResponse bool) ([]byte, abi.Errno) {
	if strings.EqualFold(hdr["Transfer-Encoding"], "chunked") {
		var body []byte
		for {
			line, err := rd.line()
			if err != abi.OK {
				return nil, err
			}
			n, perr := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
			if perr != nil {
				return nil, abi.EINVAL
			}
			if n == 0 {
				rd.line() // trailing CRLF
				return body, abi.OK
			}
			chunk, err := rd.take(int(n))
			if err != abi.OK {
				return nil, err
			}
			body = append(body, chunk...)
			rd.line() // chunk CRLF
		}
	}
	if cl, ok := hdr["Content-Length"]; ok {
		n, perr := strconv.Atoi(cl)
		if perr != nil || n < 0 {
			return nil, abi.EINVAL
		}
		return rd.take(n)
	}
	if isResponse {
		// Connection: close framing.
		return rd.rest()
	}
	return nil, abi.OK
}

// readRequestHead parses the request line and headers.
func (rd *reader) readRequestHead() (*Request, abi.Errno) {
	line, err := rd.line()
	if err != abi.OK {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 3 {
		return nil, abi.EINVAL
	}
	hdr, err := rd.readHeaders()
	if err != abi.OK {
		return nil, err
	}
	return &Request{Method: parts[0], Path: parts[1], Proto: parts[2], Header: hdr}, abi.OK
}

// readResponseHead parses the status line and headers.
func (rd *reader) readResponseHead() (*Response, abi.Errno) {
	line, err := rd.line()
	if err != abi.OK {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return nil, abi.EINVAL
	}
	status, perr := strconv.Atoi(parts[1])
	if perr != nil {
		return nil, abi.EINVAL
	}
	text := ""
	if len(parts) == 3 {
		text = parts[2]
	}
	hdr, err := rd.readHeaders()
	if err != abi.OK {
		return nil, err
	}
	return &Response{Status: status, StatusText: text, Header: hdr}, abi.OK
}

// ReadRequest parses one request from a stream.
func ReadRequest(read ReadFunc) (*Request, abi.Errno) {
	rd := &reader{read: read}
	req, err := rd.readRequestHead()
	if err != abi.OK {
		return nil, err
	}
	body, err := rd.readBody(req.Header, false)
	if err != abi.OK {
		return nil, err
	}
	req.Body = body
	return req, abi.OK
}

// ReadResponse parses one response from a stream.
func ReadResponse(read ReadFunc) (*Response, abi.Errno) {
	rd := &reader{read: read}
	resp, err := rd.readResponseHead()
	if err != abi.OK {
		return nil, err
	}
	body, err := rd.readBody(resp.Header, true)
	if err != abi.OK {
		return nil, err
	}
	resp.Body = body
	return resp, abi.OK
}

// ---------------------------------------------------------------------------
// Buffered incremental parsing: the event-loop server and the load-swarm
// clients accumulate non-blocking reads into a per-connection buffer and
// repeatedly offer it here. EAGAIN means "incomplete — keep the buffer
// and read more"; EINVAL means the peer is unsalvageably malformed. The
// reader's internal data-exhausted signal (EIO) maps to EAGAIN because a
// fixed buffer running dry is exactly "not enough bytes yet".
// ---------------------------------------------------------------------------

// ParseBufferedRequest parses one complete request from buf. On success
// it returns the request and the unconsumed remainder (the start of the
// next pipelined request). On EAGAIN the buffer held only a partial
// message; offer a longer one next time.
func ParseBufferedRequest(buf []byte) (*Request, []byte, abi.Errno) {
	rd := &reader{buf: buf, eof: true}
	req, err := rd.readRequestHead()
	if err == abi.OK {
		req.Body, err = rd.readBody(req.Header, false)
	}
	switch err {
	case abi.OK:
		return req, rd.buf, abi.OK
	case abi.EIO:
		return nil, buf, abi.EAGAIN
	default:
		return nil, buf, err
	}
}

// ParseBufferedResponse parses one complete response from buf. eof says
// whether the connection has delivered EOF — required to finish a
// close-delimited body (no Content-Length, not chunked), which is only
// complete when no more bytes can arrive.
func ParseBufferedResponse(buf []byte, eof bool) (*Response, []byte, abi.Errno) {
	rd := &reader{buf: buf, eof: true}
	resp, err := rd.readResponseHead()
	if err == abi.OK {
		_, hasCL := resp.Header["Content-Length"]
		chunked := strings.EqualFold(resp.Header["Transfer-Encoding"], "chunked")
		if !hasCL && !chunked && !eof {
			return nil, buf, abi.EAGAIN
		}
		resp.Body, err = rd.readBody(resp.Header, true)
	}
	switch err {
	case abi.OK:
		return resp, rd.buf, abi.OK
	case abi.EIO:
		return nil, buf, abi.EAGAIN
	default:
		return nil, buf, err
	}
}

// Handler services one request.
type Handler func(req *Request) *Response

const (
	acceptChunk  = 64        // listener drain granularity (one ring doorbell)
	readChunk    = 16 * 1024 // per-read request-bytes granularity
	serveBacklog = 128
)

// srvConn is one connection's event-loop state: unparsed request bytes
// accumulated from non-blocking reads, unflushed response bytes awaiting
// socket space, and the teardown flags.
type srvConn struct {
	fd      int
	in      []byte
	out     []byte
	closing bool // close once out drains (Connection: close / parse error)
	eof     bool // peer half-closed its write side; drain then close
}

// Serve runs the event-driven HTTP/1.1 server: ONE process multiplexes
// every connection over SYS_poll. The listener is non-blocking and
// drained in accept batches (one ring doorbell per batch); connections
// are non-blocking, keep-alive by default, and parse pipelined requests
// incrementally from a per-connection buffer. Responses queue in an
// output buffer flushed as far as the socket accepts — when the peer
// stops reading, the connection parks on POLLOUT and the server stops
// reading new requests from it (backpressure) without stalling anyone
// else. Service order is deterministic: the poll set is listener-first
// then ascending connection fd, every pass.
//
// Serve returns when the listener descriptor dies (POLLNVAL — e.g. a
// signal handler closed it) or on setup failure.
func Serve(p posix.Proc, port int, handler Handler) abi.Errno {
	lfd, err := p.Socket()
	if err != abi.OK {
		return err
	}
	if err := p.Bind(lfd, port); err != abi.OK {
		return err
	}
	if err := p.Listen(lfd, serveBacklog); err != abi.OK {
		return err
	}
	if err := p.Setfl(lfd, abi.O_NONBLOCK); err != abi.OK {
		return err
	}
	conns := map[int]*srvConn{}
	var fds []abi.Pollfd
	var order []int
	drop := func(c *srvConn) {
		p.Close(c.fd)
		delete(conns, c.fd)
	}
	for {
		fds = fds[:0]
		order = order[:0]
		for fd := range conns {
			order = append(order, fd)
		}
		sort.Ints(order)
		fds = append(fds, abi.Pollfd{Fd: int32(lfd), Events: abi.POLLIN})
		for _, fd := range order {
			ev := uint32(abi.POLLIN)
			if len(conns[fd].out) > 0 {
				// Backpressure: a queued response means we wait for
				// writability and read no further requests.
				ev = abi.POLLOUT
			}
			fds = append(fds, abi.Pollfd{Fd: int32(fd), Events: ev})
		}
		if _, err := p.Poll(fds, -1); err != abi.OK {
			return err
		}
		if fds[0].Revents&abi.POLLNVAL != 0 {
			return abi.OK
		}
		if fds[0].Revents&abi.POLLIN != 0 {
			for {
				batch, aerr := p.AcceptBatch(lfd, acceptChunk)
				for _, cfd := range batch {
					conns[cfd] = &srvConn{fd: cfd}
				}
				if aerr != abi.OK || len(batch) < acceptChunk {
					break
				}
			}
		}
		for i, fd := range order {
			c := conns[fd]
			re := fds[i+1].Revents
			if re == 0 {
				continue
			}
			if re&abi.POLLNVAL != 0 {
				delete(conns, fd)
				continue
			}
			if len(c.out) > 0 {
				if re&(abi.POLLOUT|abi.POLLERR|abi.POLLHUP) == 0 {
					continue
				}
				if !srvFlush(p, c) {
					drop(c)
					continue
				}
				if len(c.out) == 0 && (c.closing || c.eof) {
					drop(c)
				}
				continue
			}
			if re&abi.POLLERR != 0 && re&abi.POLLIN == 0 {
				drop(c)
				continue
			}
			if re&(abi.POLLIN|abi.POLLHUP) != 0 {
				if !srvRead(p, c, handler) || !srvFlush(p, c) {
					drop(c)
					continue
				}
				if len(c.out) == 0 && (c.closing || c.eof) {
					drop(c)
				}
			}
		}
	}
}

// srvRead drains the connection's readable bytes and services every
// complete pipelined request already buffered, queueing responses in
// submission order. Returns false when the connection is dead.
func srvRead(p posix.Proc, c *srvConn, handler Handler) bool {
	for !c.eof {
		b, err := p.Read(c.fd, readChunk)
		if err == abi.EAGAIN {
			break
		}
		if err != abi.OK {
			return false
		}
		if len(b) == 0 {
			c.eof = true
			break
		}
		c.in = append(c.in, b...)
		if len(b) < readChunk {
			// A short read drained the socket: stop without paying an
			// EAGAIN-confirming syscall. Poll is level-triggered, so any
			// race-arrived bytes re-report POLLIN on the next pass.
			break
		}
	}
	for len(c.in) > 0 && !c.closing {
		req, rest, perr := ParseBufferedRequest(c.in)
		if perr == abi.EAGAIN {
			break
		}
		if perr != abi.OK {
			c.out = append(c.out, WriteResponse(&Response{
				Status: 400,
				Header: map[string]string{"Connection": "close"},
			})...)
			c.closing = true
			c.in = nil
			return true
		}
		// Compact in place: rest is a suffix of c.in's backing array, so
		// this is a forward memmove, and the buffer never creeps.
		n := copy(c.in, rest)
		c.in = c.in[:n]
		resp := handler(req)
		if resp == nil {
			resp = &Response{Status: 500}
		}
		if wantsClose(req) {
			if resp.Header == nil {
				resp.Header = map[string]string{}
			}
			resp.Header["Connection"] = "close"
			c.closing = true
		}
		c.out = append(c.out, WriteResponse(resp)...)
	}
	if c.eof {
		// Half-close: nothing further can complete a partial request.
		c.in = nil
	}
	return true
}

// srvFlush writes queued response bytes as far as the socket accepts;
// leftover bytes park the connection on POLLOUT. Returns false when the
// connection is dead.
func srvFlush(p posix.Proc, c *srvConn) bool {
	for len(c.out) > 0 {
		n, err := p.Write(c.fd, c.out)
		if n > 0 {
			rem := copy(c.out, c.out[n:])
			c.out = c.out[:rem]
		}
		if err == abi.EAGAIN {
			return true
		}
		if err != abi.OK {
			return false
		}
		if n <= 0 {
			return true
		}
	}
	return true
}

// wantsClose reports whether the request asks to end the connection
// after its response (explicit close, or HTTP/1.0 without keep-alive).
func wantsClose(req *Request) bool {
	conn := strings.ToLower(req.Header["Connection"])
	if req.Proto == "HTTP/1.0" {
		return conn != "keep-alive"
	}
	return conn == "close"
}

// ServeSerial is the pre-event-loop server kept as the ablation
// baseline: blocking accept, one request per connection, Connection:
// close. The load experiments in EXPERIMENTS.md measure Serve against
// this.
func ServeSerial(p posix.Proc, port int, handler Handler) abi.Errno {
	fd, err := p.Socket()
	if err != abi.OK {
		return err
	}
	if err := p.Bind(fd, port); err != abi.OK {
		return err
	}
	if err := p.Listen(fd, 16); err != abi.OK {
		return err
	}
	for {
		conn, err := p.Accept(fd)
		if err != abi.OK {
			return err
		}
		serveConn(p, conn, handler)
	}
}

// serveConn handles a single serial connection.
func serveConn(p posix.Proc, conn int, handler Handler) {
	req, err := ReadRequest(func(n int) ([]byte, abi.Errno) { return p.Read(conn, n) })
	if err != abi.OK {
		p.Close(conn)
		return
	}
	resp := handler(req)
	if resp == nil {
		resp = &Response{Status: 500}
	}
	if resp.Header == nil {
		resp.Header = map[string]string{}
	}
	resp.Header["Connection"] = "close"
	posix.WriteAll(p, conn, WriteResponse(resp))
	p.Close(conn)
}
