// Package httpx is the minimal HTTP/1.1 implementation the case studies
// need: request/response serialization and parsing (content-length and
// chunked bodies), a server loop for Browsix processes (the meme server,
// §5.1.1), and pure building blocks the kernel-side XHR API reuses
// (§4.1: Browsix "replaces several native modules, like the module for
// parsing and generating HTTP responses and requests, with pure
// JavaScript implementations").
package httpx

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// Request is an HTTP request.
type Request struct {
	Method string
	Path   string
	Proto  string
	Header map[string]string
	Body   []byte
}

// Response is an HTTP response.
type Response struct {
	Status     int
	StatusText string
	Header     map[string]string
	Body       []byte
}

// statusText covers the codes the system emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 500:
		return "Internal Server Error"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// canonical header iteration order for deterministic output.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteRequest serializes a request with a Content-Length body.
func WriteRequest(r *Request) []byte {
	var sb strings.Builder
	path := r.Path
	if path == "" {
		path = "/"
	}
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\n", r.Method, path)
	hdr := map[string]string{"Host": "localhost", "Connection": "close"}
	for k, v := range r.Header {
		hdr[k] = v
	}
	if len(r.Body) > 0 {
		hdr["Content-Length"] = strconv.Itoa(len(r.Body))
	}
	for _, k := range sortedKeys(hdr) {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, hdr[k])
	}
	sb.WriteString("\r\n")
	out := append([]byte(sb.String()), r.Body...)
	return out
}

// WriteResponse serializes a response. If resp.Header sets
// Transfer-Encoding: chunked the body is chunk-encoded (the paper notes
// the XHR layer handles "potentially chunked" responses); otherwise a
// Content-Length header is emitted.
func WriteResponse(r *Response) []byte {
	var sb strings.Builder
	text := r.StatusText
	if text == "" {
		text = statusText(r.Status)
	}
	fmt.Fprintf(&sb, "HTTP/1.1 %d %s\r\n", r.Status, text)
	hdr := map[string]string{"Connection": "close"}
	for k, v := range r.Header {
		hdr[k] = v
	}
	chunked := strings.EqualFold(hdr["Transfer-Encoding"], "chunked")
	if !chunked {
		hdr["Content-Length"] = strconv.Itoa(len(r.Body))
	}
	for _, k := range sortedKeys(hdr) {
		fmt.Fprintf(&sb, "%s: %s\r\n", k, hdr[k])
	}
	sb.WriteString("\r\n")
	if !chunked {
		return append([]byte(sb.String()), r.Body...)
	}
	out := []byte(sb.String())
	const chunkSize = 4096
	for off := 0; off < len(r.Body); off += chunkSize {
		end := off + chunkSize
		if end > len(r.Body) {
			end = len(r.Body)
		}
		out = append(out, []byte(fmt.Sprintf("%x\r\n", end-off))...)
		out = append(out, r.Body[off:end]...)
		out = append(out, '\r', '\n')
	}
	out = append(out, []byte("0\r\n\r\n")...)
	return out
}

// ReadFunc supplies stream bytes: it returns up to n bytes, empty at EOF.
type ReadFunc func(n int) ([]byte, abi.Errno)

// reader buffers a ReadFunc for incremental parsing.
type reader struct {
	read ReadFunc
	buf  []byte
	eof  bool
}

func (rd *reader) fill() abi.Errno {
	if rd.eof {
		return abi.OK
	}
	b, err := rd.read(16 * 1024)
	if err != abi.OK {
		return err
	}
	if len(b) == 0 {
		rd.eof = true
		return abi.OK
	}
	rd.buf = append(rd.buf, b...)
	return abi.OK
}

// line reads through the next CRLF (or LF).
func (rd *reader) line() (string, abi.Errno) {
	for {
		if i := strings.IndexByte(string(rd.buf), '\n'); i >= 0 {
			line := strings.TrimRight(string(rd.buf[:i]), "\r")
			rd.buf = rd.buf[i+1:]
			return line, abi.OK
		}
		if rd.eof {
			return "", abi.EIO
		}
		if err := rd.fill(); err != abi.OK {
			return "", err
		}
	}
}

// take reads exactly n bytes.
func (rd *reader) take(n int) ([]byte, abi.Errno) {
	for len(rd.buf) < n {
		if rd.eof {
			return nil, abi.EIO
		}
		if err := rd.fill(); err != abi.OK {
			return nil, err
		}
	}
	out := rd.buf[:n]
	rd.buf = rd.buf[n:]
	return out, abi.OK
}

// rest drains to EOF.
func (rd *reader) rest() ([]byte, abi.Errno) {
	for !rd.eof {
		if err := rd.fill(); err != abi.OK {
			return nil, err
		}
	}
	out := rd.buf
	rd.buf = nil
	return out, abi.OK
}

// readHeaders parses "K: V" lines until the blank line.
func (rd *reader) readHeaders() (map[string]string, abi.Errno) {
	hdr := map[string]string{}
	for {
		line, err := rd.line()
		if err != abi.OK {
			return nil, err
		}
		if line == "" {
			return hdr, abi.OK
		}
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, abi.EINVAL
		}
		hdr[textprotoCanon(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
}

// textprotoCanon canonicalizes a header name (Content-Length form).
func textprotoCanon(s string) string {
	parts := strings.Split(strings.ToLower(s), "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "-")
}

// readBody consumes a message body per the headers.
func (rd *reader) readBody(hdr map[string]string, isResponse bool) ([]byte, abi.Errno) {
	if strings.EqualFold(hdr["Transfer-Encoding"], "chunked") {
		var body []byte
		for {
			line, err := rd.line()
			if err != abi.OK {
				return nil, err
			}
			n, perr := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
			if perr != nil {
				return nil, abi.EINVAL
			}
			if n == 0 {
				rd.line() // trailing CRLF
				return body, abi.OK
			}
			chunk, err := rd.take(int(n))
			if err != abi.OK {
				return nil, err
			}
			body = append(body, chunk...)
			rd.line() // chunk CRLF
		}
	}
	if cl, ok := hdr["Content-Length"]; ok {
		n, perr := strconv.Atoi(cl)
		if perr != nil || n < 0 {
			return nil, abi.EINVAL
		}
		return rd.take(n)
	}
	if isResponse {
		// Connection: close framing.
		return rd.rest()
	}
	return nil, abi.OK
}

// ReadRequest parses one request from a stream.
func ReadRequest(read ReadFunc) (*Request, abi.Errno) {
	rd := &reader{read: read}
	line, err := rd.line()
	if err != abi.OK {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 3 {
		return nil, abi.EINVAL
	}
	hdr, err := rd.readHeaders()
	if err != abi.OK {
		return nil, err
	}
	body, err := rd.readBody(hdr, false)
	if err != abi.OK {
		return nil, err
	}
	return &Request{Method: parts[0], Path: parts[1], Proto: parts[2], Header: hdr, Body: body}, abi.OK
}

// ReadResponse parses one response from a stream.
func ReadResponse(read ReadFunc) (*Response, abi.Errno) {
	rd := &reader{read: read}
	line, err := rd.line()
	if err != abi.OK {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		return nil, abi.EINVAL
	}
	status, perr := strconv.Atoi(parts[1])
	if perr != nil {
		return nil, abi.EINVAL
	}
	text := ""
	if len(parts) == 3 {
		text = parts[2]
	}
	hdr, err := rd.readHeaders()
	if err != abi.OK {
		return nil, err
	}
	body, err := rd.readBody(hdr, true)
	if err != abi.OK {
		return nil, err
	}
	return &Response{Status: status, StatusText: text, Header: hdr, Body: body}, abi.OK
}

// Handler services one request.
type Handler func(req *Request) *Response

// Serve runs an HTTP/1.1 server on a Browsix process: bind, listen,
// accept, one request per connection (Connection: close). It returns only
// on listen failure; the process typically runs until killed, exactly like
// the meme server.
func Serve(p posix.Proc, port int, handler Handler) abi.Errno {
	fd, err := p.Socket()
	if err != abi.OK {
		return err
	}
	if err := p.Bind(fd, port); err != abi.OK {
		return err
	}
	if err := p.Listen(fd, 16); err != abi.OK {
		return err
	}
	for {
		conn, err := p.Accept(fd)
		if err != abi.OK {
			return err
		}
		serveConn(p, conn, handler)
	}
}

// serveConn handles a single connection.
func serveConn(p posix.Proc, conn int, handler Handler) {
	req, err := ReadRequest(func(n int) ([]byte, abi.Errno) { return p.Read(conn, n) })
	if err != abi.OK {
		p.Close(conn)
		return
	}
	resp := handler(req)
	if resp == nil {
		resp = &Response{Status: 500}
	}
	posix.WriteAll(p, conn, WriteResponse(resp))
	p.Close(conn)
}
