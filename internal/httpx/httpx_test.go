package httpx

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/abi"
)

// sliceReader feeds a byte slice in dribs to exercise incremental parsing.
func sliceReader(data []byte, chunk int) ReadFunc {
	off := 0
	return func(n int) ([]byte, abi.Errno) {
		if off >= len(data) {
			return nil, abi.OK
		}
		take := chunk
		if take > n {
			take = n
		}
		end := off + take
		if end > len(data) {
			end = len(data)
		}
		out := data[off:end]
		off = end
		return out, abi.OK
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Method: "POST",
		Path:   "/api/meme",
		Header: map[string]string{"Content-Type": "application/json"},
		Body:   []byte(`{"template":"doge"}`),
	}
	raw := WriteRequest(req)
	for _, chunk := range []int{1, 3, 7, 1 << 20} {
		got, err := ReadRequest(sliceReader(raw, chunk))
		if err != abi.OK {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if got.Method != "POST" || got.Path != "/api/meme" || string(got.Body) != string(req.Body) {
			t.Fatalf("chunk=%d: %+v", chunk, got)
		}
		if got.Header["Content-Type"] != "application/json" {
			t.Fatalf("headers: %v", got.Header)
		}
	}
}

func TestResponseRoundTripContentLength(t *testing.T) {
	resp := &Response{Status: 200, Body: []byte("hello body")}
	raw := WriteResponse(resp)
	got, err := ReadResponse(sliceReader(raw, 4))
	if err != abi.OK || got.Status != 200 || string(got.Body) != "hello body" {
		t.Fatalf("got %+v err %v", got, err)
	}
	if got.Header["Content-Length"] != "10" {
		t.Fatalf("content-length: %v", got.Header)
	}
}

func TestResponseChunkedEncoding(t *testing.T) {
	body := strings.Repeat("0123456789", 1500) // > one 4KiB chunk
	resp := &Response{
		Status: 200,
		Header: map[string]string{"Transfer-Encoding": "chunked"},
		Body:   []byte(body),
	}
	raw := WriteResponse(resp)
	if !strings.Contains(string(raw), "\r\n1000\r\n") {
		t.Fatal("no chunk framing emitted")
	}
	got, err := ReadResponse(sliceReader(raw, 13))
	if err != abi.OK || string(got.Body) != body {
		t.Fatalf("chunked round trip failed: err=%v len=%d", err, len(got.Body))
	}
}

func TestResponseConnectionCloseFraming(t *testing.T) {
	raw := []byte("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nstream until eof")
	got, err := ReadResponse(sliceReader(raw, 5))
	if err != abi.OK || string(got.Body) != "stream until eof" {
		t.Fatalf("close-framed body: %q (%v)", got.Body, err)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"GARBAGE\r\n\r\n",                       // bad request line
		"GET /\r\n\r\n",                         // missing proto
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
		"HTTP/1.1 abc OK\r\n\r\n",               // bad status
		"GET / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", // truncated body
	}
	for _, c := range cases {
		if strings.HasPrefix(c, "HTTP/") {
			if _, err := ReadResponse(sliceReader([]byte(c), 4)); err == abi.OK {
				t.Errorf("response %q parsed", c)
			}
			continue
		}
		if _, err := ReadRequest(sliceReader([]byte(c), 4)); err == abi.OK {
			t.Errorf("request %q parsed", c)
		}
	}
}

func TestHeaderCanonicalization(t *testing.T) {
	raw := []byte("GET / HTTP/1.1\r\ncontent-length: 2\r\nX-CUSTOM-THING: v\r\n\r\nok")
	got, err := ReadRequest(sliceReader(raw, 64))
	if err != abi.OK {
		t.Fatal(err)
	}
	if got.Header["Content-Length"] != "2" || got.Header["X-Custom-Thing"] != "v" {
		t.Fatalf("headers: %v", got.Header)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(body []byte, pathSuffix string) bool {
		pathSuffix = strings.Map(func(r rune) rune {
			if r <= ' ' || r > '~' {
				return 'x'
			}
			return r
		}, pathSuffix)
		req := &Request{Method: "PUT", Path: "/p/" + pathSuffix, Body: body}
		got, err := ReadRequest(sliceReader(WriteRequest(req), 9))
		return err == abi.OK && got.Path == req.Path && string(got.Body) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusTextDefaults(t *testing.T) {
	raw := WriteResponse(&Response{Status: 404})
	if !strings.Contains(string(raw), "404 Not Found") {
		t.Fatalf("status line: %q", raw[:32])
	}
	raw = WriteResponse(&Response{Status: 299})
	if !strings.Contains(string(raw), "299 Status 299") {
		t.Fatalf("unknown status line: %q", raw[:32])
	}
}
