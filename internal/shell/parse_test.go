package shell

import (
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *listNode {
	t.Helper()
	l, err := parse(src)
	if err != nil {
		t.Fatalf("parse(%q): %v", src, err)
	}
	return l
}

func TestLexWordsAndOperators(t *testing.T) {
	toks, err := lex(`cat a.txt | grep -v 'x y' > out 2>&1 &`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		if tk.kind == tEOF {
			break
		}
		kinds = append(kinds, tk.text)
	}
	want := []string{"cat", "a.txt", "|", "grep", "-v", "'x y'", ">", "out", "2>&1", "&"}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %q, want %q", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token[%d] = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexQuoteKeepsMetachars(t *testing.T) {
	toks, _ := lex(`echo "a | b; c"`)
	if toks[1].text != `"a | b; c"` {
		t.Fatalf("quoted token = %q", toks[1].text)
	}
}

func TestLexIncompleteQuote(t *testing.T) {
	if _, err := lex(`echo "unterminated`); err != errIncomplete {
		t.Fatalf("err = %v, want errIncomplete", err)
	}
	if _, err := lex(`echo 'open`); err != errIncomplete {
		t.Fatalf("single quote err = %v", err)
	}
}

func TestLexComments(t *testing.T) {
	toks, _ := lex("echo hi # everything here is ignored | > &\n")
	n := 0
	for _, tk := range toks {
		if tk.kind == tWord {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("words after comment strip = %d, want 2", n)
	}
}

func TestLexLineContinuation(t *testing.T) {
	toks, _ := lex("echo a \\\n b")
	var words []string
	for _, tk := range toks {
		if tk.kind == tWord {
			words = append(words, tk.text)
		}
	}
	if len(words) != 3 {
		t.Fatalf("words = %v", words)
	}
}

func TestParsePipelineShape(t *testing.T) {
	l := mustParse(t, "a | b | c")
	pn, ok := l.items[0].n.(*pipeNode)
	if !ok || len(pn.cmds) != 3 {
		t.Fatalf("not a 3-stage pipeline: %#v", l.items[0].n)
	}
}

func TestParseAndOrChain(t *testing.T) {
	l := mustParse(t, "a && b || c")
	ao, ok := l.items[0].n.(*andOrNode)
	if !ok || len(ao.rest) != 2 {
		t.Fatalf("and-or shape wrong: %#v", l.items[0].n)
	}
	if ao.rest[0].op != "&&" || ao.rest[1].op != "||" {
		t.Fatalf("ops = %v %v", ao.rest[0].op, ao.rest[1].op)
	}
}

func TestParseBackgroundFlag(t *testing.T) {
	l := mustParse(t, "slow & fast")
	if !l.items[0].background || l.items[1].background {
		t.Fatalf("background flags: %v %v", l.items[0].background, l.items[1].background)
	}
}

func TestParseRedirections(t *testing.T) {
	l := mustParse(t, "cmd < in > out 2> err")
	s := l.items[0].n.(*simpleNode)
	if len(s.redirs) != 3 {
		t.Fatalf("redirs = %+v", s.redirs)
	}
	ops := []string{s.redirs[0].op, s.redirs[1].op, s.redirs[2].op}
	if ops[0] != "<" || ops[1] != ">" || ops[2] != "2>" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestParseAssignments(t *testing.T) {
	l := mustParse(t, "A=1 B=two cmd arg")
	s := l.items[0].n.(*simpleNode)
	if len(s.assigns) != 2 || len(s.words) != 2 {
		t.Fatalf("assigns=%v words=%v", s.assigns, s.words)
	}
	// '=' inside an operand is not an assignment.
	l = mustParse(t, "cmd key=value")
	s = l.items[0].n.(*simpleNode)
	if len(s.assigns) != 0 || len(s.words) != 2 {
		t.Fatalf("operand= mis-parsed: assigns=%v words=%v", s.assigns, s.words)
	}
}

func TestParseIfRequiresFi(t *testing.T) {
	if _, err := parse("if true; then echo x;"); err != errIncomplete {
		t.Fatalf("err = %v, want errIncomplete", err)
	}
	mustParse(t, "if true; then echo x; fi")
	mustParse(t, "if a; then b; elif c; then d; else e; fi")
}

func TestParseWhileUntilFor(t *testing.T) {
	mustParse(t, "while true; do echo x; done")
	w := mustParse(t, "until false; do echo x; done").items[0].n.(*whileNode)
	if !w.until {
		t.Fatal("until flag not set")
	}
	f := mustParse(t, "for x in a b; do echo $x; done").items[0].n.(*forNode)
	if f.name != "x" || len(f.words) != 2 {
		t.Fatalf("for node: %+v", f)
	}
}

func TestParseSubshellKeepsSource(t *testing.T) {
	l := mustParse(t, "(cd /tmp && pwd) > out")
	sub := l.items[0].n.(*subshellNode)
	if sub.src != "cd /tmp && pwd" {
		t.Fatalf("subshell src = %q", sub.src)
	}
	if len(sub.redirs) != 1 {
		t.Fatalf("subshell redirs = %v", sub.redirs)
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Property: arbitrary byte soup must never panic the parser — it
	// either parses or returns an error.
	f := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parse(%q) panicked: %v", s, r)
			}
		}()
		_, _ = parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsAssignment(t *testing.T) {
	cases := map[string]bool{
		"A=1": true, "_x=": true, "PATH=/usr/bin": true,
		"=x": false, "1A=2": false, "a b=c": false, "noequals": false,
	}
	for in, want := range cases {
		if got := isAssignment(in); got != want {
			t.Errorf("isAssignment(%q) = %v", in, got)
		}
	}
}
