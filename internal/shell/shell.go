package shell

import (
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// Main is the entry point for the "sh"/"dash" programs:
//
//	sh -c 'command line'      run one command string
//	sh script.sh [args...]    run a script file
//	sh                        read commands from standard input
func Main(p posix.Proc) int {
	args := p.Args()[1:]
	if len(args) > 0 && args[0] == "-c" {
		if len(args) < 2 {
			posix.Fprintf(p, abi.Stderr, "sh: -c requires an argument\n")
			return 2
		}
		name := "sh"
		var params []string
		if len(args) > 2 {
			name = args[2]
			params = args[3:]
		}
		return runSource(p, args[1], name, params)
	}
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		data, err := posix.ReadFile(p, args[0])
		if err != abi.OK {
			posix.Fprintf(p, abi.Stderr, "sh: %s: %v\n", args[0], err)
			return 127
		}
		src := string(data)
		// Scripts may start with a shebang; the kernel already consumed
		// its meaning, drop the line.
		if strings.HasPrefix(src, "#!") {
			if i := strings.IndexByte(src, '\n'); i >= 0 {
				src = src[i+1:]
			}
		}
		return runSource(p, src, args[0], args[1:])
	}
	return interactive(p)
}

// runSource parses and executes a complete source string.
func runSource(p posix.Proc, src, name string, params []string) int {
	list, err := parse(src)
	if err != nil {
		posix.Fprintf(p, abi.Stderr, "sh: %v\n", err)
		return 2
	}
	sh := newState(p, name, params)
	sh.run(list)
	if sh.exited {
		return sh.exitCode
	}
	return sh.lastStatus
}

// interactive reads commands from stdin, accumulating lines until they
// parse (so multi-line constructs work), and executes each complete
// command. A "$ " prompt goes to stderr, like a real shell on a pipe-less
// terminal.
func interactive(p posix.Proc) int {
	sh := newState(p, "sh", nil)
	lr := posix.NewLineReader(p, abi.Stdin)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			posix.WriteString(p, abi.Stderr, "$ ")
		} else {
			posix.WriteString(p, abi.Stderr, "> ")
		}
		line, ok, err := lr.ReadLine()
		if err != abi.OK || !ok {
			break
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		list, perr := parse(pending.String())
		if perr == errIncomplete {
			continue
		}
		src := pending.String()
		pending.Reset()
		if perr != nil {
			posix.Fprintf(p, abi.Stderr, "sh: %v\n", perr)
			sh.lastStatus = 2
			continue
		}
		_ = src
		sh.runList(list)
		if sh.exited {
			return sh.exitCode
		}
	}
	return sh.lastStatus
}

func init() {
	posix.Register(&posix.Program{Name: "sh", Main: Main})
	posix.Register(&posix.Program{Name: "dash", Main: Main})
	// test/[ also exist as external binaries, as on a real system.
	testMain := func(p posix.Proc) int {
		args := p.Args()[1:]
		if posix.Basename(p.Args()[0]) == "[" {
			if len(args) == 0 || args[len(args)-1] != "]" {
				posix.Fprintf(p, abi.Stderr, "[: missing ]\n")
				return 2
			}
			args = args[:len(args)-1]
		}
		sh := newState(p, "test", nil)
		return sh.builtinTest(args)
	}
	posix.Register(&posix.Program{Name: "test", Main: testMain})
	posix.Register(&posix.Program{Name: "[", Main: testMain})
	// The paper's terminal ships an `exec` utility: replace the process
	// image with the given command.
	posix.Register(&posix.Program{Name: "exec", Main: func(p posix.Proc) int {
		args := p.Args()[1:]
		if len(args) == 0 {
			return 0
		}
		path, err := posix.LookPath(p, args[0])
		if err != abi.OK {
			posix.Fprintf(p, abi.Stderr, "exec: %s: not found\n", args[0])
			return 127
		}
		if e := p.Exec(path, args, p.Environ()); e != abi.OK {
			posix.Fprintf(p, abi.Stderr, "exec: %v\n", e)
			return 127
		}
		return 0
	}})
}
