package shell

import (
	"strconv"
	"strings"
)

// Arithmetic expansion: the $((expr)) subset dash scripts rely on.
// Grammar (precedence climbing):
//
//	expr   := cmp (('==' | '!=' | '<' | '<=' | '>' | '>=') cmp)*
//	cmp    := term (('+' | '-') term)*
//	term   := unary (('*' | '/' | '%') unary)*
//	unary  := ('-' | '+' | '!')* primary
//	primary:= NUMBER | NAME | '(' expr ')'
//
// Unset names evaluate to 0, as POSIX specifies. Division by zero yields
// 0 with a diagnostic-free result (dash errors; we stay total so that a
// buggy script cannot wedge the interpreter).
func (sh *state) arith(src string) string {
	p := &arithParser{sh: sh, src: src}
	v := p.parseExpr()
	return strconv.FormatInt(v, 10)
}

type arithParser struct {
	sh  *state
	src string
	pos int
}

func (p *arithParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *arithParser) peek() byte {
	p.skipSpace()
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *arithParser) take(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		// Don't let '<' swallow '<='.
		if (tok == "<" || tok == ">") && p.pos+1 < len(p.src) && p.src[p.pos+1] == '=' {
			return false
		}
		if tok == "=" {
			return false // assignment unsupported; treat as garbage
		}
		p.pos += len(tok)
		return true
	}
	return false
}

func boolVal(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (p *arithParser) parseExpr() int64 {
	left := p.parseCmp()
	for {
		switch {
		case p.take("=="):
			left = boolVal(left == p.parseCmp())
		case p.take("!="):
			left = boolVal(left != p.parseCmp())
		case p.take("<="):
			left = boolVal(left <= p.parseCmp())
		case p.take(">="):
			left = boolVal(left >= p.parseCmp())
		case p.take("<"):
			left = boolVal(left < p.parseCmp())
		case p.take(">"):
			left = boolVal(left > p.parseCmp())
		default:
			return left
		}
	}
}

func (p *arithParser) parseCmp() int64 {
	left := p.parseTerm()
	for {
		switch {
		case p.take("+"):
			left += p.parseTerm()
		case p.take("-"):
			left -= p.parseTerm()
		default:
			return left
		}
	}
}

func (p *arithParser) parseTerm() int64 {
	left := p.parseUnary()
	for {
		switch {
		case p.take("*"):
			left *= p.parseUnary()
		case p.take("/"):
			if d := p.parseUnary(); d != 0 {
				left /= d
			} else {
				left = 0
			}
		case p.take("%"):
			if d := p.parseUnary(); d != 0 {
				left %= d
			} else {
				left = 0
			}
		default:
			return left
		}
	}
}

func (p *arithParser) parseUnary() int64 {
	switch {
	case p.take("-"):
		return -p.parseUnary()
	case p.take("!"):
		return boolVal(p.parseUnary() == 0)
	}
	p.take("+")
	return p.parsePrimary()
}

func (p *arithParser) parsePrimary() int64 {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	c := p.src[p.pos]
	if c == '(' {
		p.pos++
		v := p.parseExpr()
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
		}
		return v
	}
	if c == '$' {
		// $VAR inside arithmetic (common in scripts).
		p.pos++
		return p.readName()
	}
	if c >= '0' && c <= '9' {
		j := p.pos
		for j < len(p.src) && p.src[j] >= '0' && p.src[j] <= '9' {
			j++
		}
		v, _ := strconv.ParseInt(p.src[p.pos:j], 10, 64)
		p.pos = j
		return v
	}
	if isNameByte(c, true) {
		return p.readName()
	}
	p.pos++ // skip garbage, stay total
	return 0
}

func (p *arithParser) readName() int64 {
	j := p.pos
	for j < len(p.src) && isNameByte(p.src[j], j == p.pos) {
		j++
	}
	name := p.src[p.pos:j]
	p.pos = j
	v, _ := strconv.ParseInt(strings.TrimSpace(p.sh.lookupVar(name)), 10, 64)
	return v
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return true
	case !first && c >= '0' && c <= '9':
		return true
	}
	return false
}
