package shell

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/posix"
)

// expandProc implements the minimum of posix.Proc that parameter
// expansion needs (pid, env); glob and command substitution are covered
// by the integration suite.
type expandProc struct {
	posix.Proc
	env []string
}

func (e *expandProc) Getpid() int                 { return 42 }
func (e *expandProc) Getenv(k string) string      { return posix.Getenv(e.env, k) }
func (e *expandProc) Setenv(k, v string)          { e.env = posix.SetEnv(e.env, k, v) }
func (e *expandProc) Getcwd() (string, abi.Errno) { return "/", abi.OK }

func newExpandState() *state {
	sh := newState(&expandProc{env: []string{"HOME=/home", "PATH=/usr/bin"}}, "sh", []string{"one", "two"})
	sh.vars["LOCAL"] = "lv"
	sh.lastStatus = 7
	return sh
}

func one(t *testing.T, sh *state, raw string) string {
	t.Helper()
	fields := sh.expandWord(raw)
	if len(fields) != 1 {
		t.Fatalf("expandWord(%q) = %v, want one field", raw, fields)
	}
	return fields[0]
}

func TestExpandParameters(t *testing.T) {
	sh := newExpandState()
	cases := map[string]string{
		"$LOCAL":     "lv",
		"${LOCAL}x":  "lvx",
		"$HOME":      "/home",
		"$?":         "7",
		"$$":         "42",
		"$#":         "2",
		"$1":         "one",
		"$2":         "two",
		"$0":         "sh",
		"a$LOCAL-b":  "alv-b",
		"'$LOCAL'":   "$LOCAL",
		`"$LOCAL"`:   "lv",
		`\$LOCAL`:    "$LOCAL",
		"$MISSING-x": "-x",
		"$":          "$",
	}
	for raw, want := range cases {
		if got := one(t, sh, raw); got != want {
			t.Errorf("expand(%q) = %q, want %q", raw, got, want)
		}
	}
}

func TestExpandFieldSplitting(t *testing.T) {
	sh := newExpandState()
	sh.vars["MULTI"] = "a b  c"
	fields := sh.expandWord("$MULTI")
	if len(fields) != 3 || fields[0] != "a" || fields[2] != "c" {
		t.Fatalf("unquoted expansion fields = %v", fields)
	}
	fields = sh.expandWord(`"$MULTI"`)
	if len(fields) != 1 || fields[0] != "a b  c" {
		t.Fatalf("quoted expansion fields = %v", fields)
	}
}

func TestExpandDollarAt(t *testing.T) {
	sh := newExpandState()
	fields := sh.expandWord(`"$@"`)
	if len(fields) != 2 || fields[0] != "one" || fields[1] != "two" {
		t.Fatalf(`"$@" = %v`, fields)
	}
	fields = sh.expandWord("$@")
	if len(fields) != 2 {
		t.Fatalf("$@ = %v", fields)
	}
}

func TestExpandSingleNoSplit(t *testing.T) {
	sh := newExpandState()
	sh.vars["MULTI"] = "a b"
	if got := sh.expandWordSingle("$MULTI.txt"); got != "a b.txt" {
		t.Fatalf("expandWordSingle = %q", got)
	}
}

func TestSplitFieldsPure(t *testing.T) {
	// Unquoted spaces break fields even next to quoted segments; the
	// quoted interior never splits.
	fields := splitFields([]segment{
		{text: "a ", quoted: false},
		{text: "b c", quoted: true},
		{text: " d", quoted: false},
	})
	if len(fields) != 3 || fields[0].text != "a" || fields[1].text != "b c" || fields[2].text != "d" {
		t.Fatalf("fields = %+v", fields)
	}
	// Adjacent quoted+unquoted text with no spaces concatenates.
	fields = splitFields([]segment{
		{text: "pre", quoted: false},
		{text: "mid dle", quoted: true},
		{text: "post", quoted: false},
	})
	if len(fields) != 1 || fields[0].text != "premid dlepost" {
		t.Fatalf("concat fields = %+v", fields)
	}
	// All-whitespace unquoted text yields no fields.
	if got := splitFields([]segment{{text: "   ", quoted: false}}); len(got) != 0 {
		t.Fatalf("whitespace fields = %+v", got)
	}
	// Quoted empty string yields one empty field.
	if got := splitFields([]segment{{text: "", quoted: true}}); len(got) != 1 {
		t.Fatalf("empty quoted = %+v", got)
	}
}

func TestEvalTestPure(t *testing.T) {
	sh := newState(&expandProc{}, "test", nil)
	cases := []struct {
		args []string
		want bool
	}{
		{[]string{"x"}, true},
		{[]string{""}, false},
		{[]string{"-z", ""}, true},
		{[]string{"-n", "y"}, true},
		{[]string{"a", "=", "a"}, true},
		{[]string{"a", "!=", "a"}, false},
		{[]string{"2", "-lt", "10"}, true},
		{[]string{"10", "-lt", "2"}, false},
		{[]string{"!", "-z", "v"}, true},
		{[]string{"notanum", "-eq", "3"}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := sh.evalTest(c.args); got != c.want {
			t.Errorf("test %v = %v, want %v", c.args, got, c.want)
		}
	}
	_ = abi.OK
}
