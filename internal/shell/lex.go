// Package shell implements the POSIX shell of the Browsix terminal case
// study (§5.1.2). The paper compiles dash — the Debian Almquist shell —
// to JavaScript with Emscripten and runs it as a Browsix process; this
// package is a dash-subset reimplementation registered as the programs
// "sh" and "dash", running (like the original) on the Emterpreter/async
// runtime so it can spawn and manage subprocesses.
//
// Supported: pipelines, && || ; &, subshells, if/elif/else, while, for,
// redirections (<, >, >>, 2>, 2>>, 2>&1), single/double quotes and
// backslash escapes, parameter expansion ($VAR, ${VAR}, $?, $$, $#, $@,
// $0-$9), command substitution $(...), pathname globbing (* ? [...]),
// comments, variable assignments, and the builtins cd, pwd, exit, export,
// unset, shift, wait, exec, test/[, :, true, false, echo, set, source/.
package shell

import (
	"fmt"
	"strings"
)

// tokKind classifies lexer output.
type tokKind int

const (
	tWord tokKind = iota
	tOp           // |, &, ;, &&, ||, (, ), <, >, >>, 2>, 2>>, 2>&1, newline
	tEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// errIncomplete signals that the source ended mid-construct (the
// interactive loop then reads another line).
var errIncomplete = fmt.Errorf("shell: unexpected end of input")

type lexer struct {
	src string
	pos int
}

// lex tokenizes an entire source string. Words keep their quoting intact;
// expansion happens later, as in a real shell.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.kind == tEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) next() (token, error) {
	// Skip blanks and comments (but not newlines — they are commands
	// separators).
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' {
			lx.pos++
			continue
		}
		if c == '\\' && lx.peekAt(1) == '\n' {
			lx.pos += 2 // line continuation
			continue
		}
		if c == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, pos: start}, nil
	}
	c := lx.src[lx.pos]
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch {
	case c == '\n':
		lx.pos++
		return token{kind: tOp, text: "\n", pos: start}, nil
	case two == "&&" || two == "||" || two == ">>":
		lx.pos += 2
		return token{kind: tOp, text: two, pos: start}, nil
	case c == '2' && lx.peekAt(1) == '>':
		// 2>, 2>>, 2>&1
		if lx.peekAt(2) == '&' && lx.peekAt(3) == '1' {
			lx.pos += 4
			return token{kind: tOp, text: "2>&1", pos: start}, nil
		}
		if lx.peekAt(2) == '>' {
			lx.pos += 3
			return token{kind: tOp, text: "2>>", pos: start}, nil
		}
		lx.pos += 2
		return token{kind: tOp, text: "2>", pos: start}, nil
	case strings.IndexByte("|&;()<>", c) >= 0:
		lx.pos++
		return token{kind: tOp, text: string(c), pos: start}, nil
	}
	// A word: consume until an unquoted metacharacter.
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\'':
			end := strings.IndexByte(lx.src[lx.pos+1:], '\'')
			if end < 0 {
				return token{}, errIncomplete
			}
			sb.WriteString(lx.src[lx.pos : lx.pos+end+2])
			lx.pos += end + 2
		case c == '"':
			i := lx.pos + 1
			for {
				if i >= len(lx.src) {
					return token{}, errIncomplete
				}
				if lx.src[i] == '\\' && i+1 < len(lx.src) {
					i += 2
					continue
				}
				if lx.src[i] == '"' {
					break
				}
				i++
			}
			sb.WriteString(lx.src[lx.pos : i+1])
			lx.pos = i + 1
		case c == '\\':
			if lx.pos+1 >= len(lx.src) {
				return token{}, errIncomplete
			}
			sb.WriteString(lx.src[lx.pos : lx.pos+2])
			lx.pos += 2
		case c == '$' && lx.peekAt(1) == '(':
			// Command substitution: consume to the balanced close
			// paren so the parser sees one word.
			depth := 0
			i := lx.pos
			for ; i < len(lx.src); i++ {
				if lx.src[i] == '(' {
					depth++
				}
				if lx.src[i] == ')' {
					depth--
					if depth == 0 {
						break
					}
				}
			}
			if i >= len(lx.src) {
				return token{}, errIncomplete
			}
			sb.WriteString(lx.src[lx.pos : i+1])
			lx.pos = i + 1
		case c == ' ' || c == '\t' || c == '\n' || strings.IndexByte("|&;()<>", c) >= 0:
			return token{kind: tWord, text: sb.String(), pos: start}, nil
		case c == '#' && sb.Len() == 0:
			return token{kind: tWord, text: sb.String(), pos: start}, nil
		default:
			sb.WriteByte(c)
			lx.pos++
		}
		// "2>" only counts as an operator at word start; inside a word
		// (like file2>out is "file2 > out"? POSIX says 2> is io-number
		// only when standalone) — handled by the operator case above
		// only when it begins a token.
	}
	return token{kind: tWord, text: sb.String(), pos: start}, nil
}
