package shell

import (
	"path"
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// Word expansion: quote handling, parameter expansion, command
// substitution, field splitting, pathname globbing — the dash subset.

// segment is a run of expanded text; quoted runs are exempt from field
// splitting and globbing.
type segment struct {
	text   string
	quoted bool
}

// expandSegments processes quoting and $-expansions of one raw word.
// "$@" produces one fieldBreak-separated segment per positional param.
func (sh *state) expandSegments(raw string) []segment {
	var segs []segment
	add := func(text string, quoted bool) {
		segs = append(segs, segment{text: text, quoted: quoted})
	}
	i := 0
	for i < len(raw) {
		c := raw[i]
		switch {
		case c == '\'':
			end := strings.IndexByte(raw[i+1:], '\'')
			add(raw[i+1:i+1+end], true)
			i += end + 2
		case c == '"':
			j := i + 1
			var inner strings.Builder
			for j < len(raw) && raw[j] != '"' {
				if raw[j] == '\\' && j+1 < len(raw) && strings.IndexByte("$`\"\\", raw[j+1]) >= 0 {
					inner.WriteByte(raw[j+1])
					j += 2
					continue
				}
				if raw[j] == '$' {
					val, n := sh.expandDollar(raw[j:], true)
					inner.WriteString(val)
					j += n
					continue
				}
				inner.WriteByte(raw[j])
				j++
			}
			add(inner.String(), true)
			i = j + 1
		case c == '\\':
			if i+1 < len(raw) {
				add(string(raw[i+1]), true)
				i += 2
			} else {
				i++
			}
		case c == '$':
			val, n := sh.expandDollar(raw[i:], false)
			add(val, false)
			i += n
		default:
			j := i
			for j < len(raw) && strings.IndexByte(`'"\$`, raw[j]) < 0 {
				j++
			}
			add(raw[i:j], false)
			i = j
		}
	}
	return segs
}

// expandDollar handles one $-expansion at the start of s, returning the
// value and the number of source bytes consumed.
func (sh *state) expandDollar(s string, inQuotes bool) (string, int) {
	if len(s) < 2 {
		return "$", 1
	}
	switch s[1] {
	case '?':
		return strconv.Itoa(sh.lastStatus), 2
	case '$':
		return strconv.Itoa(sh.p.Getpid()), 2
	case '#':
		return strconv.Itoa(len(sh.params)), 2
	case '!':
		if len(sh.jobs) == 0 {
			return "", 2
		}
		return strconv.Itoa(sh.jobs[len(sh.jobs)-1]), 2
	case '@', '*':
		return strings.Join(sh.params, " "), 2
	case '(':
		// $(( ... )) is arithmetic expansion; $( ... ) command subst.
		if len(s) > 2 && s[2] == '(' {
			if end := strings.Index(s, "))"); end >= 0 {
				return sh.arith(s[3:end]), end + 2
			}
		}
		depth := 0
		for i := 1; i < len(s); i++ {
			if s[i] == '(' {
				depth++
			}
			if s[i] == ')' {
				depth--
				if depth == 0 {
					return sh.commandSubst(s[2:i]), i + 1
				}
			}
		}
		return "", len(s)
	case '{':
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return "", len(s)
		}
		return sh.lookupVar(s[2:end]), end + 1
	}
	if s[1] >= '0' && s[1] <= '9' {
		n := int(s[1] - '0')
		if n == 0 {
			return sh.name, 2
		}
		if n <= len(sh.params) {
			return sh.params[n-1], 2
		}
		return "", 2
	}
	// $NAME
	j := 1
	for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || j > 1 && s[j] >= '0' && s[j] <= '9') {
		j++
	}
	if j == 1 {
		return "$", 1
	}
	return sh.lookupVar(s[1:j]), j
}

// lookupVar checks shell variables, then the environment.
func (sh *state) lookupVar(name string) string {
	if v, ok := sh.vars[name]; ok {
		return v
	}
	return sh.p.Getenv(name)
}

// commandSubst runs a command in a subshell and captures its stdout,
// stripping trailing newlines (POSIX).
func (sh *state) commandSubst(src string) string {
	out := sh.captureOutput(src)
	return strings.TrimRight(out, "\n")
}

// captureOutput spawns `sh -c src` with stdout connected to a pipe and
// slurps it.
func (sh *state) captureOutput(src string) string {
	p := sh.p
	r, w, err := p.Pipe()
	if err != abi.OK {
		return ""
	}
	pid, serr := p.Spawn(sh.selfPath(), []string{"sh", "-c", src}, sh.execEnv(nil), []int{0, w, 2})
	p.Close(w)
	if serr != abi.OK {
		p.Close(r)
		return ""
	}
	data, _ := posix.ReadAll(p, r)
	p.Close(r)
	p.Wait4(pid, 0)
	return string(data)
}

// expandWord fully expands one raw word into zero or more fields.
func (sh *state) expandWord(raw string) []string {
	// "$@" as a complete word becomes one field per parameter.
	if raw == `"$@"` {
		return append([]string{}, sh.params...)
	}
	segs := sh.expandSegments(raw)
	fields := splitFields(segs)
	var out []string
	for _, f := range fields {
		if !f.quoted && strings.ContainsAny(f.text, "*?[") {
			if matches := sh.glob(f.text); len(matches) > 0 {
				out = append(out, matches...)
				continue
			}
		}
		out = append(out, f.text)
	}
	return out
}

// expandWordSingle expands a word into exactly one field (redirect
// targets, for-variable names).
func (sh *state) expandWordSingle(raw string) string {
	segs := sh.expandSegments(raw)
	var sb strings.Builder
	for _, s := range segs {
		sb.WriteString(s.text)
	}
	return sb.String()
}

// splitFields performs IFS field splitting over the segment list:
// unquoted whitespace separates fields; quoted segments never split.
func splitFields(segs []segment) []segment {
	var out []segment
	cur := segment{}
	started := false
	flush := func() {
		if started {
			out = append(out, cur)
			cur = segment{}
			started = false
		}
	}
	for _, s := range segs {
		if s.quoted {
			cur.text += s.text
			// A field counts as quoted (glob-suppressed) when a quoted
			// part contributed glob metacharacters.
			if strings.ContainsAny(s.text, "*?[") {
				cur.quoted = true
			}
			started = true
			continue
		}
		rest := s.text
		for {
			i := strings.IndexAny(rest, " \t\n")
			if i < 0 {
				if rest != "" {
					cur.text += rest
					started = true
				}
				break
			}
			if i > 0 {
				cur.text += rest[:i]
				started = true
			}
			flush()
			rest = rest[i+1:]
		}
	}
	flush()
	return out
}

// glob expands a pathname pattern against the file system. Returns nil
// when nothing matches (the caller then keeps the literal pattern, as
// POSIX specifies).
func (sh *state) glob(pattern string) []string {
	p := sh.p
	absolute := strings.HasPrefix(pattern, "/")
	parts := strings.Split(strings.Trim(pattern, "/"), "/")
	bases := []string{"."}
	if absolute {
		bases = []string{"/"}
	}
	for _, part := range parts {
		if part == "" {
			continue
		}
		var next []string
		if !strings.ContainsAny(part, "*?[") {
			for _, b := range bases {
				next = append(next, joinPath(b, part))
			}
			bases = next
			continue
		}
		for _, b := range bases {
			fd, err := p.Open(b, abi.O_RDONLY|abi.O_DIRECTORY, 0)
			if err != abi.OK {
				continue
			}
			ents, err := posix.ReadDir(p, fd)
			p.Close(fd)
			if err != abi.OK {
				continue
			}
			names := make([]string, 0, len(ents))
			for _, e := range ents {
				names = append(names, e.Name)
			}
			// Deterministic order.
			sortStrings(names)
			for _, name := range names {
				if strings.HasPrefix(name, ".") && !strings.HasPrefix(part, ".") {
					continue
				}
				if ok, _ := path.Match(part, name); ok {
					next = append(next, joinPath(b, name))
				}
			}
		}
		bases = next
	}
	// Verify existence of literal tails (e.g. dir/*/file with fixed file).
	var out []string
	for _, b := range bases {
		if _, err := p.Lstat(b); err == abi.OK {
			out = append(out, strings.TrimPrefix(b, "./"))
		}
	}
	return out
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
