package shell

import (
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// state is one shell invocation's interpreter state.
type state struct {
	p          posix.Proc
	vars       map[string]string
	params     []string
	name       string
	lastStatus int
	jobs       []int
	exited     bool
	exitCode   int
}

func newState(p posix.Proc, name string, params []string) *state {
	// Plumb the working directory the kernel launched us with into the
	// environment, as login shells do: $PWD tracks Getcwd from the start
	// (the public Start(Spec{Dir: ...}) path makes this observable).
	if cwd, err := p.Getcwd(); err == abi.OK && p.Getenv("PWD") != cwd {
		p.Setenv("PWD", cwd)
	}
	return &state{p: p, vars: map[string]string{}, name: name, params: params}
}

// selfPath is the path subshells and command substitutions re-invoke.
func (sh *state) selfPath() string { return "/bin/sh" }

// execEnv builds the child environment: the exported environment plus
// per-command temporary assignments.
func (sh *state) execEnv(extra []string) []string {
	env := append([]string{}, sh.p.Environ()...)
	for _, kv := range extra {
		k, v, _ := strings.Cut(kv, "=")
		env = posix.SetEnv(env, k, v)
	}
	return env
}

// run executes a parsed list and returns the final status.
func (sh *state) run(l *listNode) int {
	sh.runList(l)
	return sh.lastStatus
}

func (sh *state) runList(l *listNode) {
	for _, item := range l.items {
		if sh.exited {
			return
		}
		// Interpreter bookkeeping costs a little CPU per command.
		sh.p.CPU(15_000)
		if item.background {
			sh.runBackground(item.n)
			continue
		}
		sh.runNode(item.n)
	}
}

func (sh *state) runNode(n node) {
	if sh.exited {
		return
	}
	switch x := n.(type) {
	case *listNode:
		sh.runList(x)
	case *andOrNode:
		sh.runNode(x.first)
		for _, part := range x.rest {
			if sh.exited {
				return
			}
			if (part.op == "&&") != (sh.lastStatus == 0) {
				continue
			}
			sh.runNode(part.n)
		}
	case *pipeNode:
		sh.runPipeline(x)
	case *simpleNode:
		sh.runSimple(x)
	case *subshellNode:
		sh.runSubshell(x, false)
	case *ifNode:
		sh.runIf(x)
	case *whileNode:
		sh.runWhile(x)
	case *forNode:
		sh.runFor(x)
	}
}

func (sh *state) runIf(n *ifNode) {
	sh.runList(n.cond)
	if sh.lastStatus == 0 {
		sh.runList(n.then)
		return
	}
	for _, e := range n.elifs {
		sh.runList(e.cond)
		if sh.lastStatus == 0 {
			sh.runList(e.then)
			return
		}
	}
	if n.els != nil {
		sh.runList(n.els)
		return
	}
	sh.lastStatus = 0
}

func (sh *state) runWhile(n *whileNode) {
	status := 0
	for !sh.exited {
		sh.runList(n.cond)
		ok := sh.lastStatus == 0
		if n.until {
			ok = !ok
		}
		if !ok {
			break
		}
		sh.runList(n.body)
		status = sh.lastStatus
	}
	sh.lastStatus = status
}

func (sh *state) runFor(n *forNode) {
	var values []string
	for _, w := range n.words {
		values = append(values, sh.expandWord(w)...)
	}
	status := 0
	for _, v := range values {
		if sh.exited {
			return
		}
		sh.vars[n.name] = v
		sh.runList(n.body)
		status = sh.lastStatus
	}
	sh.lastStatus = status
}

// runSubshell re-invokes the shell on the subshell's source text — the
// moral equivalent of dash forking for "( ... )".
func (sh *state) runSubshell(n *subshellNode, background bool) {
	p := sh.p
	files := []int{0, 1, 2}
	opened, ok := sh.openRedirs(n.redirs, files)
	if !ok {
		sh.lastStatus = 1
		return
	}
	defer sh.closeFds(opened)
	pid, err := p.Spawn(sh.selfPath(), []string{"sh", "-c", n.src}, sh.execEnv(nil), files)
	if err != abi.OK {
		posix.Fprintf(p, abi.Stderr, "sh: subshell: %v\n", err)
		sh.lastStatus = 127
		return
	}
	if background {
		sh.jobs = append(sh.jobs, pid)
		sh.lastStatus = 0
		return
	}
	sh.waitFor(pid)
}

// runBackground launches a node without waiting ("cmd &").
func (sh *state) runBackground(n node) {
	switch x := n.(type) {
	case *simpleNode:
		pid, ok := sh.spawnSimple(x, []int{0, 1, 2})
		if ok {
			sh.jobs = append(sh.jobs, pid)
		}
		sh.lastStatus = 0
	case *subshellNode:
		sh.runSubshell(x, true)
	case *pipeNode:
		pids, ok := sh.spawnPipeline(x)
		if ok {
			sh.jobs = append(sh.jobs, pids...)
		}
		sh.lastStatus = 0
	default:
		// Compound commands in the background would need their source
		// span; dash forks here. Run synchronously as a fallback.
		sh.runNode(n)
	}
}

// runPipeline connects stages with pipes and runs them concurrently.
func (sh *state) runPipeline(n *pipeNode) {
	pids, ok := sh.spawnPipeline(n)
	if !ok {
		sh.lastStatus = 127
		return
	}
	// Status of a pipeline is the status of its last command.
	for i, pid := range pids {
		st := sh.waitPid(pid)
		if i == len(pids)-1 {
			sh.lastStatus = st
		}
	}
}

// spawnPipeline spawns every stage wired through pipes, returning pids.
func (sh *state) spawnPipeline(n *pipeNode) ([]int, bool) {
	p := sh.p
	var pids []int
	prevRead := -1
	for i, stage := range n.cmds {
		stdin, stdout := 0, 1
		var rfd, wfd int
		last := i == len(n.cmds)-1
		if !last {
			var err abi.Errno
			rfd, wfd, err = p.Pipe()
			if err != abi.OK {
				return pids, false
			}
			stdout = wfd
		}
		if prevRead >= 0 {
			stdin = prevRead
		}
		files := []int{stdin, stdout, 2}
		var pid int
		var ok bool
		switch s := stage.(type) {
		case *simpleNode:
			pid, ok = sh.spawnSimple(s, files)
		case *subshellNode:
			opened, rok := sh.openRedirs(s.redirs, files)
			if rok {
				var err abi.Errno
				pid, err = p.Spawn(sh.selfPath(), []string{"sh", "-c", s.src}, sh.execEnv(nil), files)
				ok = err == abi.OK
				sh.closeFds(opened)
			}
		default:
			// Compound stage: run it in a child shell via its source
			// span, as dash's fork would.
			src := compoundSrc(stage)
			if src == "" {
				posix.Fprintf(p, abi.Stderr, "sh: unsupported pipeline stage\n")
				break
			}
			var err abi.Errno
			pid, err = p.Spawn(sh.selfPath(), []string{"sh", "-c", src}, sh.execEnv(nil), files)
			ok = err == abi.OK
		}
		if prevRead >= 0 {
			p.Close(prevRead)
		}
		if !last {
			p.Close(wfd)
			prevRead = rfd
		}
		if !ok {
			if !last {
				p.Close(rfd)
			}
			return pids, false
		}
		pids = append(pids, pid)
	}
	return pids, true
}

// compoundSrc returns the recorded source span of a compound command.
func compoundSrc(n node) string {
	switch x := n.(type) {
	case *ifNode:
		return x.src
	case *whileNode:
		return x.src
	case *forNode:
		return x.src
	case *subshellNode:
		return x.src
	}
	return ""
}

// runSimple executes assignments + command word + redirections.
func (sh *state) runSimple(n *simpleNode) {
	p := sh.p
	// Assignment-only command: set shell variables.
	if len(n.words) == 0 {
		for _, kv := range n.assigns {
			k, v, _ := strings.Cut(kv, "=")
			sh.vars[k] = sh.expandWordSingle(v)
		}
		sh.lastStatus = 0
		return
	}
	var argv []string
	for _, w := range n.words {
		argv = append(argv, sh.expandWord(w)...)
	}
	if len(argv) == 0 {
		sh.lastStatus = 0
		return
	}
	if fn := sh.builtin(argv[0]); fn != nil {
		restore, ok := sh.redirectInProcess(n.redirs)
		if !ok {
			sh.lastStatus = 1
			return
		}
		sh.lastStatus = fn(argv[1:])
		restore()
		return
	}
	pid, ok := sh.spawnSimpleArgv(argv, n.assigns, n.redirs, []int{0, 1, 2})
	if !ok {
		sh.lastStatus = 127
		return
	}
	sh.waitFor(pid)
	_ = p
}

// spawnSimple expands and spawns a simple command with the given stdio.
func (sh *state) spawnSimple(n *simpleNode, files []int) (int, bool) {
	var argv []string
	for _, w := range n.words {
		argv = append(argv, sh.expandWord(w)...)
	}
	if len(argv) == 0 {
		return 0, false
	}
	// Builtins inside pipelines run via their external twins (echo, test,
	// true, false all exist in /usr/bin).
	return sh.spawnSimpleArgv(argv, n.assigns, n.redirs, files)
}

func (sh *state) spawnSimpleArgv(argv, assigns []string, redirs []redir, files []int) (int, bool) {
	p := sh.p
	path, err := posix.LookPath(p, argv[0])
	if err != abi.OK {
		posix.Fprintf(p, abi.Stderr, "sh: %s: not found\n", argv[0])
		return 0, false
	}
	files = append([]int{}, files...)
	opened, ok := sh.openRedirs(redirs, files)
	if !ok {
		return 0, false
	}
	var expAssigns []string
	for _, kv := range assigns {
		k, v, _ := strings.Cut(kv, "=")
		expAssigns = append(expAssigns, k+"="+sh.expandWordSingle(v))
	}
	pid, serr := p.Spawn(path, argv, sh.execEnv(expAssigns), files)
	sh.closeFds(opened)
	if serr != abi.OK {
		posix.Fprintf(p, abi.Stderr, "sh: %s: %v\n", argv[0], serr)
		return 0, false
	}
	return pid, true
}

// openRedirs opens redirection targets and patches the child fd table
// (files[0..2]). It returns the fds the shell must close after spawning.
func (sh *state) openRedirs(redirs []redir, files []int) ([]int, bool) {
	p := sh.p
	var opened []int
	for _, r := range redirs {
		switch r.op {
		case "2>&1":
			files[2] = files[1]
			continue
		}
		target := sh.expandWordSingle(r.target)
		var fd int
		var err abi.Errno
		switch r.op {
		case "<":
			fd, err = p.Open(target, abi.O_RDONLY, 0)
		case ">", "2>":
			fd, err = p.Open(target, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
		case ">>", "2>>":
			fd, err = p.Open(target, abi.O_WRONLY|abi.O_CREAT|abi.O_APPEND, 0o644)
		default:
			err = abi.EINVAL
		}
		if err != abi.OK {
			posix.Fprintf(p, abi.Stderr, "sh: %s: %v\n", target, err)
			sh.closeFds(opened)
			return nil, false
		}
		opened = append(opened, fd)
		switch r.op {
		case "<":
			files[0] = fd
		case ">", ">>":
			files[1] = fd
		case "2>", "2>>":
			files[2] = fd
		}
	}
	return opened, true
}

func (sh *state) closeFds(fds []int) {
	for _, fd := range fds {
		sh.p.Close(fd)
	}
}

// redirectInProcess applies redirections to the shell's own fds (for
// builtins like pwd > file), returning a restore function.
func (sh *state) redirectInProcess(redirs []redir) (func(), bool) {
	if len(redirs) == 0 {
		return func() {}, true
	}
	p := sh.p
	const save = 200 // high fd range for saved descriptors
	files := []int{0, 1, 2}
	opened, ok := sh.openRedirs(redirs, files)
	if !ok {
		return nil, false
	}
	var saved []int
	for i := 0; i < 3; i++ {
		if files[i] != i {
			p.Dup2(i, save+i)
			p.Dup2(files[i], i)
			saved = append(saved, i)
		}
	}
	return func() {
		for _, i := range saved {
			p.Dup2(save+i, i)
			p.Close(save + i)
		}
		sh.closeFds(opened)
	}, true
}

// waitFor waits for a foreground child and records its status.
func (sh *state) waitFor(pid int) {
	sh.lastStatus = sh.waitPid(pid)
}

func (sh *state) waitPid(pid int) int {
	_, status, err := sh.p.Wait4(pid, 0)
	if err != abi.OK {
		return 127
	}
	if abi.WIFSIGNALED(status) {
		return 128 + abi.WTERMSIG(status)
	}
	return abi.WEXITSTATUS(status)
}

// ---------------------------------------------------------------------------
// Builtins.
// ---------------------------------------------------------------------------

func (sh *state) builtin(name string) func(args []string) int {
	switch name {
	case "cd":
		return sh.builtinCd
	case "pwd":
		return func([]string) int {
			cwd, _ := sh.p.Getcwd()
			posix.WriteString(sh.p, abi.Stdout, cwd+"\n")
			return 0
		}
	case "exit":
		return sh.builtinExit
	case "export":
		return sh.builtinExport
	case "unset":
		return func(args []string) int {
			for _, a := range args {
				delete(sh.vars, a)
			}
			return 0
		}
	case "shift":
		return func(args []string) int {
			n := 1
			if len(args) > 0 {
				n, _ = strconv.Atoi(args[0])
			}
			if n > len(sh.params) {
				n = len(sh.params)
			}
			sh.params = sh.params[n:]
			return 0
		}
	case "wait":
		return sh.builtinWait
	case "exec":
		return sh.builtinExec
	case ":", "true":
		return func([]string) int { return 0 }
	case "false":
		return func([]string) int { return 1 }
	case "echo":
		return func(args []string) int {
			noNL := false
			if len(args) > 0 && args[0] == "-n" {
				noNL = true
				args = args[1:]
			}
			s := strings.Join(args, " ")
			if !noNL {
				s += "\n"
			}
			posix.WriteString(sh.p, abi.Stdout, s)
			return 0
		}
	case "test", "[":
		return func(args []string) int {
			if name == "[" {
				if len(args) == 0 || args[len(args)-1] != "]" {
					posix.Fprintf(sh.p, abi.Stderr, "sh: [: missing ]\n")
					return 2
				}
				args = args[:len(args)-1]
			}
			return sh.builtinTest(args)
		}
	case "set":
		return func([]string) int { return 0 } // option flags are no-ops
	case ".", "source":
		return sh.builtinSource
	case "jobs":
		return func([]string) int {
			for i, pid := range sh.jobs {
				posix.Fprintf(sh.p, abi.Stdout, "[%d] %d\n", i+1, pid)
			}
			return 0
		}
	}
	return nil
}

func (sh *state) builtinCd(args []string) int {
	dir := sh.p.Getenv("HOME")
	echo := false
	if len(args) > 0 {
		dir = args[0]
		if dir == "-" {
			// cd -: previous directory, echoed, as POSIX specifies.
			dir = sh.p.Getenv("OLDPWD")
			if dir == "" {
				posix.Fprintf(sh.p, abi.Stderr, "sh: cd: OLDPWD not set\n")
				return 1
			}
			echo = true
		}
	}
	if dir == "" {
		dir = "/"
	}
	old, _ := sh.p.Getcwd()
	if err := sh.p.Chdir(dir); err != abi.OK {
		posix.Fprintf(sh.p, abi.Stderr, "sh: cd: %s: %v\n", dir, err)
		return 1
	}
	// Keep the environment's view of the working directory current for
	// children ($PWD) and for cd - ($OLDPWD).
	sh.p.Setenv("OLDPWD", old)
	if cwd, err := sh.p.Getcwd(); err == abi.OK {
		sh.p.Setenv("PWD", cwd)
		if echo {
			posix.WriteString(sh.p, abi.Stdout, cwd+"\n")
		}
	}
	return 0
}

func (sh *state) builtinExit(args []string) int {
	code := sh.lastStatus
	if len(args) > 0 {
		code, _ = strconv.Atoi(args[0])
	}
	sh.exited = true
	sh.exitCode = code
	return code
}

func (sh *state) builtinExport(args []string) int {
	for _, a := range args {
		k, v, has := strings.Cut(a, "=")
		if !has {
			v = sh.vars[k]
		}
		sh.p.Setenv(k, v)
		delete(sh.vars, k)
	}
	return 0
}

func (sh *state) builtinWait(args []string) int {
	if len(args) > 0 {
		for _, a := range args {
			pid, err := strconv.Atoi(a)
			if err != nil {
				continue
			}
			sh.waitPid(pid)
		}
		return 0
	}
	for _, pid := range sh.jobs {
		sh.waitPid(pid)
	}
	sh.jobs = nil
	return 0
}

func (sh *state) builtinExec(args []string) int {
	if len(args) == 0 {
		return 0
	}
	path, err := posix.LookPath(sh.p, args[0])
	if err != abi.OK {
		posix.Fprintf(sh.p, abi.Stderr, "sh: exec: %s: not found\n", args[0])
		sh.exited = true
		sh.exitCode = 127
		return 127
	}
	if e := sh.p.Exec(path, args, sh.p.Environ()); e != abi.OK {
		posix.Fprintf(sh.p, abi.Stderr, "sh: exec: %v\n", e)
		sh.exited = true
		sh.exitCode = 127
		return 127
	}
	return 0 // unreachable: exec replaced the image
}

func (sh *state) builtinSource(args []string) int {
	if len(args) == 0 {
		return 2
	}
	data, err := posix.ReadFile(sh.p, args[0])
	if err != abi.OK {
		posix.Fprintf(sh.p, abi.Stderr, "sh: %s: %v\n", args[0], err)
		return 1
	}
	list, perr := parse(string(data))
	if perr != nil {
		posix.Fprintf(sh.p, abi.Stderr, "sh: %s: %v\n", args[0], perr)
		return 2
	}
	sh.runList(list)
	return sh.lastStatus
}

// builtinTest implements the test/[ expression subset the case studies
// and Makefiles use.
func (sh *state) builtinTest(args []string) int {
	res := sh.evalTest(args)
	if res {
		return 0
	}
	return 1
}

func (sh *state) evalTest(args []string) bool {
	switch len(args) {
	case 0:
		return false
	case 1:
		return args[0] != ""
	case 2:
		switch args[0] {
		case "!":
			return !sh.evalTest(args[1:])
		case "-z":
			return args[1] == ""
		case "-n":
			return args[1] != ""
		case "-e":
			_, err := sh.p.Stat(args[1])
			return err == abi.OK
		case "-f":
			st, err := sh.p.Stat(args[1])
			return err == abi.OK && st.IsRegular()
		case "-d":
			st, err := sh.p.Stat(args[1])
			return err == abi.OK && st.IsDir()
		case "-s":
			st, err := sh.p.Stat(args[1])
			return err == abi.OK && st.Size > 0
		case "-x", "-r", "-w":
			_, err := sh.p.Stat(args[1])
			return err == abi.OK
		}
		return false
	case 3:
		a, op, b := args[0], args[1], args[2]
		switch op {
		case "=", "==":
			return a == b
		case "!=":
			return a != b
		case "-eq", "-ne", "-lt", "-le", "-gt", "-ge":
			x, err1 := strconv.Atoi(a)
			y, err2 := strconv.Atoi(b)
			if err1 != nil || err2 != nil {
				return false
			}
			switch op {
			case "-eq":
				return x == y
			case "-ne":
				return x != y
			case "-lt":
				return x < y
			case "-le":
				return x <= y
			case "-gt":
				return x > y
			case "-ge":
				return x >= y
			}
		case "-nt": // file a newer than b (make-style checks)
			sa, ea := sh.p.Stat(a)
			sb, eb := sh.p.Stat(b)
			return ea == abi.OK && (eb != abi.OK || sa.Mtime > sb.Mtime)
		}
		if args[0] == "!" {
			return !sh.evalTest(args[1:])
		}
		return false
	default:
		if args[0] == "!" {
			return !sh.evalTest(args[1:])
		}
		return false
	}
}
