package shell

import "testing"

func TestArithmetic(t *testing.T) {
	sh := newExpandState()
	sh.vars["N"] = "5"
	sh.vars["JUNK"] = "notanumber"
	cases := map[string]string{
		"1+2":         "3",
		"2 * 3 + 4":   "10",
		"2 * (3 + 4)": "14",
		"10 / 3":      "3",
		"10 % 3":      "1",
		"7 - 10":      "-3",
		"-N + 1":      "-4",
		"N":           "5",
		"$N * 2":      "10",
		"N + UNSET":   "5",
		"JUNK + 1":    "1",
		"3 < 5":       "1",
		"5 <= 5":      "1",
		"5 < 5":       "0",
		"3 == 3":      "1",
		"3 != 3":      "0",
		"!0":          "1",
		"!7":          "0",
		"1 / 0":       "0", // total: no crash on div-zero
		"":            "0",
	}
	for src, want := range cases {
		if got := sh.arith(src); got != want {
			t.Errorf("$((%s)) = %s, want %s", src, got, want)
		}
	}
}

func TestArithmeticInWords(t *testing.T) {
	sh := newExpandState()
	sh.vars["i"] = "3"
	if got := one(t, sh, "$((i+1))"); got != "4" {
		t.Fatalf("$((i+1)) = %q", got)
	}
	if got := one(t, sh, "x$((2*2))y"); got != "x4y" {
		t.Fatalf("embedded arith = %q", got)
	}
}
