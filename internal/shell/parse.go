package shell

import (
	"fmt"
	"strings"
)

// AST node types. The grammar is the dash subset:
//
//	list     : andOr ((';' | '&' | '\n') andOr)*
//	andOr    : pipeline (('&&' | '||') pipeline)*
//	pipeline : command ('|' command)*
//	command  : simple | '(' list ')' redirs | ifCmd | whileCmd | forCmd
//	simple   : assignment* word* redirs
type node interface{ nodeTag() string }

// listNode is a sequence of and-or items, each possibly backgrounded.
type listNode struct {
	items []listItem
}

type listItem struct {
	n          node
	background bool
}

// andOrNode chains pipelines with && / ||.
type andOrNode struct {
	first node
	rest  []andOrPart
}

type andOrPart struct {
	op string // "&&" or "||"
	n  node
}

// pipeNode is a pipeline of two or more commands.
type pipeNode struct {
	cmds []node
}

// redir is one redirection.
type redir struct {
	op     string // "<", ">", ">>", "2>", "2>>", "2>&1"
	target string // raw word (expanded later); empty for 2>&1
}

// simpleNode is assignments + argv words + redirections.
type simpleNode struct {
	assigns []string // raw "K=V" words
	words   []string // raw words, expanded at execution
	redirs  []redir
}

// subshellNode runs a list in a child shell process.
type subshellNode struct {
	body   *listNode
	src    string // raw source text, re-executed via sh -c
	redirs []redir
}

// ifNode is if/elif/else/fi.
type ifNode struct {
	cond, then *listNode
	elifs      []ifElif
	els        *listNode
	src        string // raw source span (pipeline stages re-run via sh -c)
}

type ifElif struct {
	cond, then *listNode
}

// whileNode is while/do/done.
type whileNode struct {
	cond, body *listNode
	until      bool
	src        string
}

// forNode is for NAME in WORDS; do ...; done.
type forNode struct {
	name  string
	words []string
	body  *listNode
	src   string
}

func (*listNode) nodeTag() string     { return "list" }
func (*andOrNode) nodeTag() string    { return "andor" }
func (*pipeNode) nodeTag() string     { return "pipe" }
func (*simpleNode) nodeTag() string   { return "simple" }
func (*subshellNode) nodeTag() string { return "subshell" }
func (*ifNode) nodeTag() string       { return "if" }
func (*whileNode) nodeTag() string    { return "while" }
func (*forNode) nodeTag() string      { return "for" }

type parser struct {
	toks []token
	pos  int
	src  string
}

// parse builds the AST for a complete source string.
func parse(src string) (*listNode, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	list, err := p.parseList(nil)
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tEOF {
		return nil, fmt.Errorf("shell: syntax error near %q", p.cur().text)
	}
	return list, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tOp && p.cur().text == "\n" {
		p.advance()
	}
}

// atKeyword reports whether the current token is the given reserved word.
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tWord && p.cur().text == kw
}

func (p *parser) atAnyKeyword(kws ...string) bool {
	for _, kw := range kws {
		if p.atKeyword(kw) {
			return true
		}
	}
	return false
}

// parseList parses until EOF, ')' or one of the stop keywords.
func (p *parser) parseList(stops []string) (*listNode, error) {
	out := &listNode{}
	for {
		p.skipNewlines()
		if p.cur().kind == tEOF {
			return out, nil
		}
		if p.cur().kind == tOp && p.cur().text == ")" {
			return out, nil
		}
		if len(stops) > 0 && p.atAnyKeyword(stops...) {
			return out, nil
		}
		item, err := p.parseAndOr(stops)
		if err != nil {
			return nil, err
		}
		bg := false
		if p.cur().kind == tOp {
			switch p.cur().text {
			case "&":
				bg = true
				p.advance()
			case ";", "\n":
				p.advance()
			}
		}
		out.items = append(out.items, listItem{n: item, background: bg})
	}
}

func (p *parser) parseAndOr(stops []string) (node, error) {
	first, err := p.parsePipeline(stops)
	if err != nil {
		return nil, err
	}
	ao := &andOrNode{first: first}
	for p.cur().kind == tOp && (p.cur().text == "&&" || p.cur().text == "||") {
		op := p.advance().text
		p.skipNewlines()
		next, err := p.parsePipeline(stops)
		if err != nil {
			return nil, err
		}
		ao.rest = append(ao.rest, andOrPart{op: op, n: next})
	}
	if len(ao.rest) == 0 {
		return first, nil
	}
	return ao, nil
}

func (p *parser) parsePipeline(stops []string) (node, error) {
	first, err := p.parseCommand(stops)
	if err != nil {
		return nil, err
	}
	pn := &pipeNode{cmds: []node{first}}
	for p.cur().kind == tOp && p.cur().text == "|" {
		p.advance()
		p.skipNewlines()
		next, err := p.parseCommand(stops)
		if err != nil {
			return nil, err
		}
		pn.cmds = append(pn.cmds, next)
	}
	if len(pn.cmds) == 1 {
		return first, nil
	}
	return pn, nil
}

func (p *parser) parseCommand(stops []string) (node, error) {
	if p.cur().kind == tOp && p.cur().text == "(" {
		open := p.advance()
		body, err := p.parseList(nil)
		if err != nil {
			return nil, err
		}
		if !(p.cur().kind == tOp && p.cur().text == ")") {
			return nil, errIncomplete
		}
		closeTok := p.advance()
		sub := &subshellNode{body: body, src: p.src[open.pos+1 : closeTok.pos]}
		rs, err := p.parseRedirs()
		if err != nil {
			return nil, err
		}
		sub.redirs = rs
		return sub, nil
	}
	// Compound commands record their source span so pipelines can run
	// them in a child shell (dash forks for pipeline stages).
	start := p.cur().pos
	span := func() string { return strings.TrimSpace(p.src[start:p.cur().pos]) }
	switch {
	case p.atKeyword("if"):
		n, err := p.parseIf()
		if err == nil {
			n.(*ifNode).src = span()
		}
		return n, err
	case p.atKeyword("while"), p.atKeyword("until"):
		n, err := p.parseWhile()
		if err == nil {
			n.(*whileNode).src = span()
		}
		return n, err
	case p.atKeyword("for"):
		n, err := p.parseFor()
		if err == nil {
			n.(*forNode).src = span()
		}
		return n, err
	}
	return p.parseSimple(stops)
}

func (p *parser) parseRedirs() ([]redir, error) {
	var out []redir
	for p.cur().kind == tOp {
		op := p.cur().text
		switch op {
		case "<", ">", ">>", "2>", "2>>":
			p.advance()
			if p.cur().kind != tWord {
				return nil, fmt.Errorf("shell: redirect needs a target")
			}
			out = append(out, redir{op: op, target: p.advance().text})
		case "2>&1":
			p.advance()
			out = append(out, redir{op: op})
		default:
			return out, nil
		}
	}
	return out, nil
}

func isAssignment(w string) bool {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c == '=' {
			return i > 0
		}
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return false
}

func (p *parser) parseSimple(stops []string) (node, error) {
	cmd := &simpleNode{}
	for {
		if p.cur().kind == tWord {
			w := p.cur().text
			if len(cmd.words) == 0 && isAssignment(w) {
				cmd.assigns = append(cmd.assigns, w)
				p.advance()
				continue
			}
			if len(stops) > 0 && len(cmd.words) == 0 && len(cmd.assigns) == 0 && p.atAnyKeyword(stops...) {
				break
			}
			cmd.words = append(cmd.words, w)
			p.advance()
			continue
		}
		rs, err := p.parseRedirs()
		if err != nil {
			return nil, err
		}
		if len(rs) > 0 {
			cmd.redirs = append(cmd.redirs, rs...)
			continue
		}
		break
	}
	if len(cmd.words) == 0 && len(cmd.assigns) == 0 && len(cmd.redirs) == 0 {
		return nil, fmt.Errorf("shell: syntax error near %q", p.cur().text)
	}
	return cmd, nil
}

// expectKeyword consumes a required reserved word.
func (p *parser) expectKeyword(kw string) error {
	p.skipNewlines()
	if !p.atKeyword(kw) {
		if p.cur().kind == tEOF {
			return errIncomplete
		}
		return fmt.Errorf("shell: expected %q, got %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) parseIf() (node, error) {
	p.advance() // "if"
	cond, err := p.parseList([]string{"then"})
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseList([]string{"elif", "else", "fi"})
	if err != nil {
		return nil, err
	}
	out := &ifNode{cond: cond, then: then}
	for {
		p.skipNewlines()
		switch {
		case p.atKeyword("elif"):
			p.advance()
			econd, err := p.parseList([]string{"then"})
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("then"); err != nil {
				return nil, err
			}
			ethen, err := p.parseList([]string{"elif", "else", "fi"})
			if err != nil {
				return nil, err
			}
			out.elifs = append(out.elifs, ifElif{cond: econd, then: ethen})
		case p.atKeyword("else"):
			p.advance()
			els, err := p.parseList([]string{"fi"})
			if err != nil {
				return nil, err
			}
			out.els = els
		case p.atKeyword("fi"):
			p.advance()
			return out, nil
		default:
			if p.cur().kind == tEOF {
				return nil, errIncomplete
			}
			return nil, fmt.Errorf("shell: expected fi, got %q", p.cur().text)
		}
	}
}

func (p *parser) parseWhile() (node, error) {
	until := p.cur().text == "until"
	p.advance()
	cond, err := p.parseList([]string{"do"})
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("done"); err != nil {
		return nil, err
	}
	return &whileNode{cond: cond, body: body, until: until}, nil
}

func (p *parser) parseFor() (node, error) {
	p.advance() // "for"
	if p.cur().kind != tWord {
		return nil, fmt.Errorf("shell: for needs a variable name")
	}
	name := p.advance().text
	p.skipNewlines()
	var words []string
	if p.atKeyword("in") {
		p.advance()
		for p.cur().kind == tWord {
			words = append(words, p.advance().text)
		}
	} else {
		words = []string{`"$@"`}
	}
	if p.cur().kind == tOp && (p.cur().text == ";" || p.cur().text == "\n") {
		p.advance()
	}
	if err := p.expectKeyword("do"); err != nil {
		return nil, err
	}
	body, err := p.parseList([]string{"done"})
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("done"); err != nil {
		return nil, err
	}
	return &forNode{name: name, words: words, body: body}, nil
}
