package coreutils_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	_ "repro/internal/coreutils"
	"repro/internal/fs"
	"repro/internal/rt"
	"repro/internal/sched"
)

// Utilities that only need the file system run directly under the native
// host runtime — fast, no kernel or browser involved. (Pipeline- and
// socket-dependent behaviour is covered by the root integration suite.)

type hostWorld struct {
	sim  *sched.Sim
	fsys *fs.FileSystem
}

func newWorld(t *testing.T) *hostWorld {
	t.Helper()
	sim := sched.New()
	sim.MaxSteps = 10_000_000
	clock := func() int64 { return sim.Now() }
	return &hostWorld{sim: sim, fsys: fs.NewFileSystem(fs.NewMemFS(clock), clock)}
}

func (w *hostWorld) write(t *testing.T, path, data string) {
	t.Helper()
	w.fsys.MkdirAll(dirOf(path), 0o755, func(abi.Errno) {})
	var err abi.Errno = -1
	w.fsys.WriteFile(path, []byte(data), 0o644, func(e abi.Errno) { err = e })
	if err != abi.OK {
		t.Fatalf("write %s: %v", path, err)
	}
}

func dirOf(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

func (w *hostWorld) read(t *testing.T, path string) string {
	t.Helper()
	var data []byte
	var err abi.Errno = -1
	w.fsys.ReadFile(path, func(b []byte, e abi.Errno) { data, err = b, e })
	if err != abi.OK {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}

func (w *hostWorld) run(t *testing.T, argv ...string) (int, string, string) {
	t.Helper()
	res := rt.RunHost(w.sim, w.fsys, rt.NativeKind, argv, nil, "/")
	return res.Code, string(res.Stdout), string(res.Stderr)
}

func (w *hostWorld) runOK(t *testing.T, argv ...string) string {
	t.Helper()
	code, out, errOut := w.run(t, argv...)
	if code != 0 {
		t.Fatalf("%v exited %d: %s", argv, code, errOut)
	}
	return out
}

func TestCatConcatenatesFiles(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/a", "one\n")
	w.write(t, "/b", "two\n")
	if got := w.runOK(t, "cat", "/a", "/b"); got != "one\ntwo\n" {
		t.Fatalf("cat: %q", got)
	}
	code, _, errOut := w.run(t, "cat", "/missing")
	if code != 1 || !strings.Contains(errOut, "ENOENT") {
		t.Fatalf("cat missing: %d %q", code, errOut)
	}
}

func TestCpIntoDirectory(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/src.txt", "payload")
	w.runOK(t, "mkdir", "/dest")
	w.runOK(t, "cp", "/src.txt", "/dest")
	if got := w.read(t, "/dest/src.txt"); got != "payload" {
		t.Fatalf("cp into dir: %q", got)
	}
}

func TestGrepCountAndExit(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/log", "err: a\nok\nerr: b\n")
	if got := w.runOK(t, "grep", "-c", "err", "/log"); got != "2\n" {
		t.Fatalf("grep -c: %q", got)
	}
	code, _, _ := w.run(t, "grep", "zzz", "/log")
	if code != 1 {
		t.Fatalf("grep miss exit = %d", code)
	}
	code, _, _ = w.run(t, "grep", "(", "/log")
	if code != 1 { // bad regexp -> diagnostic + nonzero
		t.Fatalf("grep bad pattern exit = %d", code)
	}
}

func TestSortModes(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/n", "10\n2\n2\n1\n")
	if got := w.runOK(t, "sort", "/n"); got != "1\n10\n2\n2\n" {
		t.Fatalf("lexical sort: %q", got)
	}
	if got := w.runOK(t, "sort", "-n", "/n"); got != "1\n2\n2\n10\n" {
		t.Fatalf("numeric sort: %q", got)
	}
	if got := w.runOK(t, "sort", "-nu", "/n"); got != "1\n2\n10\n" {
		t.Fatalf("unique sort: %q", got)
	}
	if got := w.runOK(t, "sort", "-nr", "/n"); got != "10\n2\n2\n1\n" {
		t.Fatalf("reverse sort: %q", got)
	}
}

func TestHeadTailFlagForms(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/l", "1\n2\n3\n4\n5\n")
	if got := w.runOK(t, "head", "-n", "2", "/l"); got != "1\n2\n" {
		t.Fatalf("head -n 2: %q", got)
	}
	if got := w.runOK(t, "head", "-n3", "/l"); got != "1\n2\n3\n" {
		t.Fatalf("head -n3: %q", got)
	}
	if got := w.runOK(t, "tail", "-n", "2", "/l"); got != "4\n5\n" {
		t.Fatalf("tail: %q", got)
	}
	// Requesting more than available returns everything.
	if got := w.runOK(t, "tail", "-n", "99", "/l"); got != "1\n2\n3\n4\n5\n" {
		t.Fatalf("tail overlong: %q", got)
	}
}

func TestWcMultipleFilesTotals(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/a", "x y\n")
	w.write(t, "/b", "z\n")
	out := w.runOK(t, "wc", "-lw", "/a", "/b")
	if !strings.Contains(out, "total") {
		t.Fatalf("wc totals line missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("wc output: %q", out)
	}
}

func TestLsFlags(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/d/.hidden", "h")
	w.write(t, "/d/vis", "v")
	if got := w.runOK(t, "ls", "/d"); got != "vis\n" {
		t.Fatalf("ls hides dotfiles: %q", got)
	}
	got := w.runOK(t, "ls", "-a", "/d")
	if !strings.Contains(got, ".hidden") {
		t.Fatalf("ls -a: %q", got)
	}
	got = w.runOK(t, "ls", "-l", "/d")
	if !strings.Contains(got, "vis") || !strings.Contains(got, "1") {
		t.Fatalf("ls -l: %q", got)
	}
	// ls of a plain file prints the file.
	if got := w.runOK(t, "ls", "/d/vis"); got != "vis\n" {
		t.Fatalf("ls file: %q", got)
	}
}

func TestRmRecursiveAndForce(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/tree/a/b/file", "x")
	code, _, _ := w.run(t, "rm", "/tree")
	if code != 1 {
		t.Fatal("rm dir without -r must fail")
	}
	w.runOK(t, "rm", "-r", "/tree")
	if _, out, _ := w.run(t, "ls", "/tree"); strings.Contains(out, "file") {
		t.Fatal("rm -r left content")
	}
	w.runOK(t, "rm", "-f", "/does-not-exist") // -f silences ENOENT
	code, _, _ = w.run(t, "rm", "/does-not-exist")
	if code != 1 {
		t.Fatal("rm missing without -f must fail")
	}
}

func TestTouchCreatesAndBumps(t *testing.T) {
	w := newWorld(t)
	w.runOK(t, "touch", "/new")
	var st1 abi.Stat
	w.fsys.Stat("/new", func(s abi.Stat, e abi.Errno) { st1 = s })
	w.runOK(t, "touch", "/new")
	var st2 abi.Stat
	w.fsys.Stat("/new", func(s abi.Stat, e abi.Errno) { st2 = s })
	if st2.Mtime <= st1.Mtime {
		t.Fatalf("touch did not advance mtime: %d -> %d", st1.Mtime, st2.Mtime)
	}
}

func TestSeqPrintfEchoEnvPwd(t *testing.T) {
	w := newWorld(t)
	if got := w.runOK(t, "seq", "3"); got != "1\n2\n3\n" {
		t.Fatalf("seq: %q", got)
	}
	if got := w.runOK(t, "seq", "2", "4"); got != "2\n3\n4\n" {
		t.Fatalf("seq lo hi: %q", got)
	}
	if got := w.runOK(t, "printf", `%s=%s\n`, "k", "v"); got != "k=v\n" {
		t.Fatalf("printf: %q", got)
	}
	if got := w.runOK(t, "echo", "-n", "x"); got != "x" {
		t.Fatalf("echo -n: %q", got)
	}
	if got := w.runOK(t, "pwd"); got != "/\n" {
		t.Fatalf("pwd: %q", got)
	}
}

func TestStatOutput(t *testing.T) {
	w := newWorld(t)
	w.write(t, "/f", "12345")
	out := w.runOK(t, "stat", "/f")
	if !strings.Contains(out, "Size: 5") || !strings.Contains(out, "regular file") {
		t.Fatalf("stat: %q", out)
	}
	w.runOK(t, "mkdir", "/dd")
	out = w.runOK(t, "stat", "/dd")
	if !strings.Contains(out, "directory") {
		t.Fatalf("stat dir: %q", out)
	}
}

func TestMkdirParents(t *testing.T) {
	w := newWorld(t)
	code, _, _ := w.run(t, "mkdir", "/a/b/c")
	if code != 1 {
		t.Fatal("mkdir without -p should fail on missing parents")
	}
	w.runOK(t, "mkdir", "-p", "/a/b/c")
	var st abi.Stat
	var err abi.Errno
	w.fsys.Stat("/a/b/c", func(s abi.Stat, e abi.Errno) { st, err = s, e })
	if err != abi.OK || !st.IsDir() {
		t.Fatal("mkdir -p did not create tree")
	}
	w.runOK(t, "mkdir", "-p", "/a/b/c") // idempotent
}

func TestTrueFalse(t *testing.T) {
	w := newWorld(t)
	if code, _, _ := w.run(t, "true"); code != 0 {
		t.Fatal("true")
	}
	if code, _, _ := w.run(t, "false"); code != 1 {
		t.Fatal("false")
	}
}
