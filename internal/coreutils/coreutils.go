// Package coreutils implements the Unix utilities the Browsix terminal
// ships on its PATH (§5.1.2): "cat, cp, curl, echo, exec, grep, head, ls,
// mkdir, rm, rmdir, sh, sha1sum, sort, stat, tail, tee, touch, wc, and
// xargs", written for Node.js in the paper and here against posix.Proc.
// "These programs run equivalently under Node and BROWSIX without any
// modifications" — ours run under every runtime kind, which is exactly
// what the Figure 9 benchmarks exploit.
//
// Each utility registers itself in the posix program registry; the image
// builder (internal/rt.InstallExecutable) stages them into /usr/bin.
package coreutils

import (
	"crypto/sha1"
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/abi"
	"repro/internal/posix"
)

// Names lists every utility this package registers.
func Names() []string {
	return []string{
		"cat", "cp", "curl", "echo", "env", "false", "grep", "head",
		"ln", "ls", "mkdir", "printf", "pwd", "readlink", "rm", "rmdir",
		"seq", "sha1sum", "sleep", "sort", "stat", "tail", "tee", "touch",
		"true", "wc", "xargs",
	}
}

func init() {
	posix.Register(&posix.Program{Name: "cat", Main: catMain})
	posix.Register(&posix.Program{Name: "cp", Main: cpMain})
	posix.Register(&posix.Program{Name: "curl", Main: curlMain})
	posix.Register(&posix.Program{Name: "echo", Main: echoMain})
	posix.Register(&posix.Program{Name: "env", Main: envMain})
	posix.Register(&posix.Program{Name: "false", Main: func(posix.Proc) int { return 1 }})
	posix.Register(&posix.Program{Name: "grep", Main: grepMain})
	posix.Register(&posix.Program{Name: "head", Main: headMain})
	posix.Register(&posix.Program{Name: "ln", Main: lnMain})
	posix.Register(&posix.Program{Name: "ls", Main: lsMain})
	posix.Register(&posix.Program{Name: "readlink", Main: readlinkMain})
	posix.Register(&posix.Program{Name: "mkdir", Main: mkdirMain})
	posix.Register(&posix.Program{Name: "printf", Main: printfMain})
	posix.Register(&posix.Program{Name: "pwd", Main: pwdMain})
	posix.Register(&posix.Program{Name: "rm", Main: rmMain})
	posix.Register(&posix.Program{Name: "rmdir", Main: rmdirMain})
	posix.Register(&posix.Program{Name: "seq", Main: seqMain})
	posix.Register(&posix.Program{Name: "sha1sum", Main: sha1sumMain})
	posix.Register(&posix.Program{Name: "sleep", Main: sleepMain})
	posix.Register(&posix.Program{Name: "sort", Main: sortMain})
	posix.Register(&posix.Program{Name: "stat", Main: statMain})
	posix.Register(&posix.Program{Name: "tail", Main: tailMain})
	posix.Register(&posix.Program{Name: "tee", Main: teeMain})
	posix.Register(&posix.Program{Name: "touch", Main: touchMain})
	posix.Register(&posix.Program{Name: "true", Main: func(posix.Proc) int { return 0 }})
	posix.Register(&posix.Program{Name: "wc", Main: wcMain})
	posix.Register(&posix.Program{Name: "xargs", Main: xargsMain})
}

// fail prints a diagnostic to stderr and returns exit code 1.
func fail(p posix.Proc, format string, args ...any) int {
	posix.Fprintf(p, abi.Stderr, p.Args()[0]+": "+format+"\n", args...)
	return 1
}

// parseFlags splits leading -x flags from operands (single-dash bundles
// like -ln are split; "--" ends flag parsing).
func parseFlags(args []string) (flags map[byte]bool, operands []string) {
	flags = map[byte]bool{}
	i := 0
	for ; i < len(args); i++ {
		a := args[i]
		if a == "--" {
			i++
			break
		}
		if len(a) < 2 || a[0] != '-' || a == "-" {
			break
		}
		for _, c := range a[1:] {
			flags[byte(c)] = true
		}
	}
	return flags, args[i:]
}

// forEachInput runs fn over each operand file (or stdin when none),
// mirroring the classic filter-utility convention.
func forEachInput(p posix.Proc, operands []string, fn func(fd int, name string) int) int {
	if len(operands) == 0 {
		return fn(abi.Stdin, "-")
	}
	rc := 0
	for _, name := range operands {
		if name == "-" {
			if c := fn(abi.Stdin, "-"); c != 0 {
				rc = c
			}
			continue
		}
		fd, err := p.Open(name, abi.O_RDONLY, 0)
		if err != abi.OK {
			rc = fail(p, "%s: %v", name, err)
			continue
		}
		if c := fn(fd, name); c != 0 {
			rc = c
		}
		p.Close(fd)
	}
	return rc
}

// --- cat -------------------------------------------------------------------

func catMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	return forEachInput(p, operands, func(fd int, name string) int {
		// Vectored copy: a pipe capacity's worth of data per kernel
		// crossing. Charge per-byte processing work on top of the I/O.
		n, err := posix.CopyFdVectored(p, abi.Stdout, fd)
		p.CPU(n / 4)
		if err != abi.OK {
			return fail(p, "%s: %v", name, err)
		}
		return 0
	})
}

// --- cp --------------------------------------------------------------------

func cpMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	if len(operands) != 2 {
		return fail(p, "usage: cp SRC DST")
	}
	src, dst := operands[0], operands[1]
	sfd, err := p.Open(src, abi.O_RDONLY, 0)
	if err != abi.OK {
		return fail(p, "%s: %v", src, err)
	}
	defer p.Close(sfd)
	// cp DIR semantics: target directory gets the source basename.
	if st, serr := p.Stat(dst); serr == abi.OK && st.IsDir() {
		dst = strings.TrimSuffix(dst, "/") + "/" + posix.Basename(src)
	}
	dfd, err := p.Open(dst, abi.O_WRONLY|abi.O_CREAT|abi.O_TRUNC, 0o644)
	if err != abi.OK {
		return fail(p, "%s: %v", dst, err)
	}
	defer p.Close(dfd)
	n, err := posix.CopyFdVectored(p, dfd, sfd)
	p.CPU(n / 8)
	if err != abi.OK {
		return fail(p, "copy: %v", err)
	}
	return 0
}

// --- curl ------------------------------------------------------------------

// curlMain performs an HTTP/1.0-style GET against an in-Browsix socket
// server: curl http://localhost:PORT/path writes the response body to
// stdout (or -o FILE). It is the terminal's way of talking to servers
// started as Browsix processes.
func curlMain(p posix.Proc) int {
	args := p.Args()[1:]
	outPath := ""
	var urls []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-o" && i+1 < len(args) {
			outPath = args[i+1]
			i++
			continue
		}
		urls = append(urls, args[i])
	}
	if len(urls) != 1 {
		return fail(p, "usage: curl [-o FILE] http://localhost:PORT/path")
	}
	port, path, ok := parseURL(urls[0])
	if !ok {
		return fail(p, "unsupported url %q", urls[0])
	}
	fd, err := p.Socket()
	if err != abi.OK {
		return fail(p, "socket: %v", err)
	}
	defer p.Close(fd)
	if err := p.Connect(fd, port); err != abi.OK {
		return fail(p, "connect :%d: %v", port, err)
	}
	req := "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
	if err := posix.WriteString(p, fd, req); err != abi.OK {
		return fail(p, "write: %v", err)
	}
	raw, err := posix.ReadAll(p, fd)
	if err != abi.OK {
		return fail(p, "read: %v", err)
	}
	body := raw
	if i := strings.Index(string(raw), "\r\n\r\n"); i >= 0 {
		body = raw[i+4:]
	}
	p.CPU(int64(len(raw)) / 4)
	if outPath != "" {
		if err := posix.WriteFile(p, outPath, body, 0o644); err != abi.OK {
			return fail(p, "%s: %v", outPath, err)
		}
		return 0
	}
	posix.WriteAll(p, abi.Stdout, body)
	return 0
}

// parseURL extracts (port, path) from http://localhost:PORT/path.
func parseURL(u string) (int, string, bool) {
	rest, ok := strings.CutPrefix(u, "http://")
	if !ok {
		return 0, "", false
	}
	hostport, path, found := strings.Cut(rest, "/")
	if !found {
		path = ""
	}
	_, portStr, found := strings.Cut(hostport, ":")
	if !found {
		portStr = "80"
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return 0, "", false
	}
	return port, "/" + path, true
}

// --- echo ------------------------------------------------------------------

func echoMain(p posix.Proc) int {
	args := p.Args()[1:]
	noNewline := false
	if len(args) > 0 && args[0] == "-n" {
		noNewline = true
		args = args[1:]
	}
	out := strings.Join(args, " ")
	if !noNewline {
		out += "\n"
	}
	posix.WriteString(p, abi.Stdout, out)
	return 0
}

// --- env -------------------------------------------------------------------

func envMain(p posix.Proc) int {
	// One vectored write, one fragment per variable.
	posix.WriteLines(p, abi.Stdout, p.Environ())
	return 0
}

// --- grep ------------------------------------------------------------------

func grepMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	if len(operands) == 0 {
		return fail(p, "usage: grep [-vnc] PATTERN [FILE...]")
	}
	re, err := regexp.Compile(operands[0])
	if err != nil {
		return fail(p, "bad pattern: %v", err)
	}
	invert, number, countOnly := flags['v'], flags['n'], flags['c']
	matchedAny := false
	rc := forEachInput(p, operands[1:], func(fd int, name string) int {
		lr := posix.NewLineReader(p, fd)
		count, lineno := 0, 0
		for {
			line, ok, rerr := lr.ReadLine()
			if rerr != abi.OK {
				return fail(p, "%s: %v", name, rerr)
			}
			if !ok {
				break
			}
			lineno++
			p.CPU(int64(len(line)) * 2)
			if re.MatchString(line) != invert {
				matchedAny = true
				count++
				if countOnly {
					continue
				}
				if number {
					posix.Fprintf(p, abi.Stdout, "%d:%s\n", lineno, line)
				} else {
					posix.WriteString(p, abi.Stdout, line+"\n")
				}
			}
		}
		if countOnly {
			posix.Fprintf(p, abi.Stdout, "%d\n", count)
		}
		return 0
	})
	if rc != 0 {
		return 2
	}
	if !matchedAny {
		return 1
	}
	return 0
}

// --- head / tail -----------------------------------------------------------

func headTailCount(args []string) (int, []string) {
	n := 10
	var rest []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-n" && i+1 < len(args) {
			if v, err := strconv.Atoi(args[i+1]); err == nil {
				n = v
			}
			i++
			continue
		}
		if strings.HasPrefix(args[i], "-n") && len(args[i]) > 2 {
			if v, err := strconv.Atoi(args[i][2:]); err == nil {
				n = v
			}
			continue
		}
		rest = append(rest, args[i])
	}
	return n, rest
}

func headMain(p posix.Proc) int {
	n, operands := headTailCount(p.Args()[1:])
	return forEachInput(p, operands, func(fd int, name string) int {
		lr := posix.NewLineReader(p, fd)
		for i := 0; i < n; i++ {
			line, ok, err := lr.ReadLine()
			if err != abi.OK || !ok {
				break
			}
			posix.WriteString(p, abi.Stdout, line+"\n")
		}
		return 0
	})
}

func tailMain(p posix.Proc) int {
	n, operands := headTailCount(p.Args()[1:])
	return forEachInput(p, operands, func(fd int, name string) int {
		lines, err := posix.Lines(p, fd)
		if err != abi.OK {
			return fail(p, "%s: %v", name, err)
		}
		start := len(lines) - n
		if start < 0 {
			start = 0
		}
		for _, line := range lines[start:] {
			posix.WriteString(p, abi.Stdout, line+"\n")
		}
		return 0
	})
}

// --- ls --------------------------------------------------------------------

func lsMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	long, all := flags['l'], flags['a']
	if len(operands) == 0 {
		operands = []string{"."}
	}
	rc := 0
	for _, target := range operands {
		st, err := p.Stat(target)
		if err != abi.OK {
			rc = fail(p, "%s: %v", target, err)
			continue
		}
		if !st.IsDir() {
			printEntry(p, long, posix.Basename(target), st)
			continue
		}
		fd, err := p.Open(target, abi.O_RDONLY|abi.O_DIRECTORY, 0)
		if err != abi.OK {
			rc = fail(p, "%s: %v", target, err)
			continue
		}
		ents, err := posix.ReadDir(p, fd)
		p.Close(fd)
		if err != abi.OK {
			rc = fail(p, "%s: %v", target, err)
			continue
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
		var names []string
		for _, e := range ents {
			if !all && strings.HasPrefix(e.Name, ".") {
				continue
			}
			p.CPU(2_000)
			names = append(names, e.Name)
		}
		// Collect one fragment per entry and emit the listing as a
		// single vectored write.
		var lines []string
		if long {
			// ls -l stats each entry, like the real utility — as one
			// batched stat storm (a single doorbell on the ring
			// transport, one dentry-cache pass in the kernel).
			paths := make([]string, len(names))
			for i, name := range names {
				paths[i] = strings.TrimSuffix(target, "/") + "/" + name
			}
			ests, serrs := p.StatBatch(paths, true)
			for i, name := range names {
				est := ests[i]
				if serrs[i] != abi.OK {
					est = abi.Stat{}
				}
				lines = append(lines, formatEntry(true, name, est))
			}
		} else {
			lines = names
		}
		posix.WriteLines(p, abi.Stdout, lines)
	}
	return rc
}

func printEntry(p posix.Proc, long bool, name string, st abi.Stat) {
	posix.WriteString(p, abi.Stdout, formatEntry(long, name, st)+"\n")
}

func formatEntry(long bool, name string, st abi.Stat) string {
	if !long {
		return name
	}
	kind := "-"
	switch st.Mode & abi.S_IFMT {
	case abi.S_IFDIR:
		kind = "d"
	case abi.S_IFLNK:
		kind = "l"
	case abi.S_IFIFO:
		kind = "p"
	case abi.S_IFSOCK:
		kind = "s"
	}
	return fmt.Sprintf("%s%03o %8d %12d %s", kind, st.Mode&0o777, st.Size, st.Mtime, name)
}

// --- mkdir / rmdir / rm / touch ---------------------------------------------

func mkdirMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	parents := flags['p']
	if len(operands) == 0 {
		return fail(p, "missing operand")
	}
	rc := 0
	for _, dir := range operands {
		if parents {
			if err := mkdirAll(p, dir); err != abi.OK {
				rc = fail(p, "%s: %v", dir, err)
			}
			continue
		}
		if err := p.Mkdir(dir, 0o755); err != abi.OK {
			rc = fail(p, "%s: %v", dir, err)
		}
	}
	return rc
}

func mkdirAll(p posix.Proc, dir string) abi.Errno {
	parts := strings.Split(strings.Trim(dir, "/"), "/")
	prefix := ""
	if strings.HasPrefix(dir, "/") {
		prefix = "/"
	}
	for i := range parts {
		sub := prefix + strings.Join(parts[:i+1], "/")
		if err := p.Mkdir(sub, 0o755); err != abi.OK && err != abi.EEXIST {
			return err
		}
	}
	return abi.OK
}

// --- ln / readlink ---------------------------------------------------------

// lnMain supports symbolic links only (-s), the form the kernel's namei
// walker resolves; hard links are not part of the BrowserFS model.
func lnMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	if !flags['s'] {
		return fail(p, "only symbolic links are supported (use -s)")
	}
	if len(operands) != 2 {
		return fail(p, "usage: ln -s TARGET LINK")
	}
	target, link := operands[0], operands[1]
	if st, err := p.Stat(link); err == abi.OK && st.IsDir() {
		link = strings.TrimSuffix(link, "/") + "/" + posix.Basename(target)
	}
	if err := p.Symlink(target, link); err != abi.OK {
		return fail(p, "%s: %v", link, err)
	}
	return 0
}

func readlinkMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	if len(operands) == 0 {
		return fail(p, "usage: readlink LINK...")
	}
	rc := 0
	for _, link := range operands {
		target, err := p.Readlink(link)
		if err != abi.OK {
			rc = fail(p, "%s: %v", link, err)
			continue
		}
		posix.Fprintf(p, abi.Stdout, "%s\n", target)
	}
	return rc
}

func rmdirMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	rc := 0
	for _, dir := range operands {
		if err := p.Rmdir(dir); err != abi.OK {
			rc = fail(p, "%s: %v", dir, err)
		}
	}
	return rc
}

func rmMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	recursive, force := flags['r'], flags['f']
	rc := 0
	for _, target := range operands {
		if err := removePath(p, target, recursive); err != abi.OK {
			if force && err == abi.ENOENT {
				continue
			}
			rc = fail(p, "%s: %v", target, err)
		}
	}
	return rc
}

func removePath(p posix.Proc, target string, recursive bool) abi.Errno {
	st, err := p.Lstat(target)
	if err != abi.OK {
		return err
	}
	if !st.IsDir() {
		return p.Unlink(target)
	}
	if !recursive {
		return abi.EISDIR
	}
	fd, err := p.Open(target, abi.O_RDONLY|abi.O_DIRECTORY, 0)
	if err != abi.OK {
		return err
	}
	ents, err := posix.ReadDir(p, fd)
	p.Close(fd)
	if err != abi.OK {
		return err
	}
	for _, e := range ents {
		if err := removePath(p, strings.TrimSuffix(target, "/")+"/"+e.Name, true); err != abi.OK {
			return err
		}
	}
	return p.Rmdir(target)
}

func touchMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	rc := 0
	now := int64(0) // kernel interprets 0/0 via utimes below using explicit times
	for _, target := range operands {
		if _, err := p.Stat(target); err == abi.ENOENT {
			fd, cerr := p.Open(target, abi.O_WRONLY|abi.O_CREAT, 0o644)
			if cerr != abi.OK {
				rc = fail(p, "%s: %v", target, cerr)
				continue
			}
			p.Close(fd)
			continue
		}
		// Advance mtime: read current time indirectly via a fresh stat
		// of a just-created temp marker is overkill; use mtime+1.
		st, _ := p.Stat(target)
		if err := p.Utimes(target, st.Atime, st.Mtime+1_000_000+now); err != abi.OK {
			rc = fail(p, "%s: %v", target, err)
		}
	}
	return rc
}

// --- printf / pwd / seq ------------------------------------------------------

func printfMain(p posix.Proc) int {
	args := p.Args()[1:]
	if len(args) == 0 {
		return fail(p, "missing format")
	}
	format := strings.NewReplacer(`\n`, "\n", `\t`, "\t").Replace(args[0])
	rest := make([]any, len(args)-1)
	for i, a := range args[1:] {
		rest[i] = a
	}
	posix.WriteString(p, abi.Stdout, fmt.Sprintf(format, rest...))
	return 0
}

func pwdMain(p posix.Proc) int {
	cwd, err := p.Getcwd()
	if err != abi.OK {
		return fail(p, "%v", err)
	}
	posix.WriteString(p, abi.Stdout, cwd+"\n")
	return 0
}

func seqMain(p posix.Proc) int {
	args := p.Args()[1:]
	lo, hi := 1, 0
	switch len(args) {
	case 1:
		hi, _ = strconv.Atoi(args[0])
	case 2:
		lo, _ = strconv.Atoi(args[0])
		hi, _ = strconv.Atoi(args[1])
	default:
		return fail(p, "usage: seq [FIRST] LAST")
	}
	var sb strings.Builder
	for i := lo; i <= hi; i++ {
		fmt.Fprintf(&sb, "%d\n", i)
	}
	posix.WriteString(p, abi.Stdout, sb.String())
	return 0
}

// --- sha1sum ----------------------------------------------------------------

func sha1sumMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	return forEachInput(p, operands, func(fd int, name string) int {
		h := sha1.New()
		var total int64
		for {
			b, err := p.Read(fd, posix.DefaultChunk)
			if err != abi.OK {
				return fail(p, "%s: %v", name, err)
			}
			if len(b) == 0 {
				break
			}
			h.Write(b)
			total += int64(len(b))
			// SHA-1 costs ~2ns/byte natively; the runtime multiplier
			// turns this into the JS-level cost.
			p.CPU(int64(len(b)) * 2)
		}
		posix.Fprintf(p, abi.Stdout, "%x  %s\n", h.Sum(nil), name)
		return 0
	})
}

// --- sleep -------------------------------------------------------------------

// sleepMain burns virtual time: in the simulator, sleeping and spinning
// are both just clock advancement, so sleep N advances the process's
// clock by N seconds (fractions allowed).
func sleepMain(p posix.Proc) int {
	args := p.Args()[1:]
	if len(args) != 1 {
		return fail(p, "usage: sleep SECONDS")
	}
	secs, err := strconv.ParseFloat(args[0], 64)
	if err != nil || secs < 0 {
		return fail(p, "invalid interval %q", args[0])
	}
	// Charged at native scale: a sleep is wall-time, not CPU, so bypass
	// the runtime multiplier by pre-dividing... the Proc interface only
	// exposes CPU; charge in small native slices so the multiplier's
	// effect stays bounded for short sleeps.
	total := int64(secs * 1e9)
	p.CPU(total) // documented approximation: virtual sleep == virtual work
	return 0
}

// --- sort ------------------------------------------------------------------

func sortMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	reverse, numeric, unique := flags['r'], flags['n'], flags['u']
	var all []string
	rc := forEachInput(p, operands, func(fd int, name string) int {
		lines, err := posix.Lines(p, fd)
		if err != abi.OK {
			return fail(p, "%s: %v", name, err)
		}
		all = append(all, lines...)
		return 0
	})
	if rc != 0 {
		return rc
	}
	p.CPU(int64(len(all)) * 120) // n log n comparison work
	less := func(a, b string) bool { return a < b }
	if numeric {
		less = func(a, b string) bool {
			na, _ := strconv.ParseFloat(strings.TrimSpace(a), 64)
			nb, _ := strconv.ParseFloat(strings.TrimSpace(b), 64)
			if na != nb {
				return na < nb
			}
			return a < b
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if reverse {
			return less(all[j], all[i])
		}
		return less(all[i], all[j])
	})
	var sb strings.Builder
	var prev string
	for i, line := range all {
		if unique && i > 0 && line == prev {
			continue
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
		prev = line
	}
	posix.WriteString(p, abi.Stdout, sb.String())
	return 0
}

// --- stat ------------------------------------------------------------------

func statMain(p posix.Proc) int {
	_, operands := parseFlags(p.Args()[1:])
	rc := 0
	for _, target := range operands {
		st, err := p.Stat(target)
		if err != abi.OK {
			rc = fail(p, "%s: %v", target, err)
			continue
		}
		kind := "regular file"
		switch st.Mode & abi.S_IFMT {
		case abi.S_IFDIR:
			kind = "directory"
		case abi.S_IFLNK:
			kind = "symbolic link"
		case abi.S_IFIFO:
			kind = "fifo"
		case abi.S_IFSOCK:
			kind = "socket"
		}
		posix.Fprintf(p, abi.Stdout, "  File: %s\n  Size: %d\t%s\n Inode: %d  Links: %d\nModify: %d\n",
			target, st.Size, kind, st.Ino, st.Nlink, st.Mtime)
	}
	return rc
}

// --- tee -------------------------------------------------------------------

func teeMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	appendMode := flags['a']
	mode := abi.O_WRONLY | abi.O_CREAT
	if appendMode {
		mode |= abi.O_APPEND
	} else {
		mode |= abi.O_TRUNC
	}
	var outs []int
	for _, name := range operands {
		fd, err := p.Open(name, mode, 0o644)
		if err != abi.OK {
			return fail(p, "%s: %v", name, err)
		}
		outs = append(outs, fd)
	}
	lens := posix.VectoredLens()
	for {
		segs, err := p.Readv(abi.Stdin, lens)
		if err != abi.OK || len(segs) == 0 {
			break
		}
		posix.WritevAll(p, abi.Stdout, segs)
		for _, fd := range outs {
			posix.WritevAll(p, fd, segs)
		}
	}
	for _, fd := range outs {
		p.Close(fd)
	}
	return 0
}

// --- wc --------------------------------------------------------------------

func wcMain(p posix.Proc) int {
	flags, operands := parseFlags(p.Args()[1:])
	showLines, showWords, showBytes := flags['l'], flags['w'], flags['c']
	if !showLines && !showWords && !showBytes {
		showLines, showWords, showBytes = true, true, true
	}
	var totL, totW, totC int64
	files := 0
	lens := posix.VectoredLens()
	rc := forEachInput(p, operands, func(fd int, name string) int {
		var l, w, c int64
		inWord := false
		for {
			segs, err := p.Readv(fd, lens)
			if err != abi.OK {
				return fail(p, "%s: %v", name, err)
			}
			if len(segs) == 0 {
				break
			}
			for _, b := range segs {
				p.CPU(int64(len(b)))
				c += int64(len(b))
				for _, ch := range b {
					if ch == '\n' {
						l++
					}
					space := ch == ' ' || ch == '\n' || ch == '\t' || ch == '\r'
					if !space && !inWord {
						w++
					}
					inWord = !space
				}
			}
		}
		files++
		totL, totW, totC = totL+l, totW+w, totC+c
		printCounts(p, showLines, showWords, showBytes, l, w, c, name)
		return 0
	})
	if files > 1 {
		printCounts(p, showLines, showWords, showBytes, totL, totW, totC, "total")
	}
	return rc
}

func printCounts(p posix.Proc, sl, sw, sc bool, l, w, c int64, name string) {
	var sb strings.Builder
	if sl {
		fmt.Fprintf(&sb, "%8d", l)
	}
	if sw {
		fmt.Fprintf(&sb, "%8d", w)
	}
	if sc {
		fmt.Fprintf(&sb, "%8d", c)
	}
	if name != "-" {
		fmt.Fprintf(&sb, " %s", name)
	}
	sb.WriteByte('\n')
	posix.WriteString(p, abi.Stdout, sb.String())
}

// --- xargs -----------------------------------------------------------------

func xargsMain(p posix.Proc) int {
	args := p.Args()[1:]
	if len(args) == 0 {
		args = []string{"echo"}
	}
	input, err := posix.ReadAll(p, abi.Stdin)
	if err != abi.OK {
		return fail(p, "stdin: %v", err)
	}
	extra := strings.Fields(string(input))
	if len(extra) == 0 {
		return 0
	}
	cmd, lerr := posix.LookPath(p, args[0])
	if lerr != abi.OK {
		return fail(p, "%s: not found", args[0])
	}
	argv := append(append([]string{args[0]}, args[1:]...), extra...)
	pid, serr := p.Spawn(cmd, argv, p.Environ(), nil)
	if serr != abi.OK {
		return fail(p, "spawn %s: %v", cmd, serr)
	}
	_, status, _ := p.Wait4(pid, 0)
	return abi.WEXITSTATUS(status)
}
