package browsix_test

import (
	"crypto/sha1"
	"fmt"
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
)

// bootBase boots an instance with the standard image (coreutils + dash).
func bootBase(t testing.TB) *browsix.Instance {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	return in
}

func runOK(t *testing.T, in *browsix.Instance, cmd string) string {
	t.Helper()
	res := in.RunCommand(cmd)
	if res.Code != 0 {
		t.Fatalf("%q exited %d\nstdout: %s\nstderr: %s", cmd, res.Code, res.Stdout, res.Stderr)
	}
	return string(res.Stdout)
}

func TestQuickstartCat(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/greeting.txt", []byte("hello from browsix\n"))
	if got := runOK(t, in, "cat /greeting.txt"); got != "hello from browsix\n" {
		t.Fatalf("cat output %q", got)
	}
}

func TestShellPipeline(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/data.txt", []byte("apple\nbanana\napple pie\ncherry\n"))
	// The paper's example: cat file.txt | grep apple > apples.txt
	out := runOK(t, in, "cat /data.txt | grep apple > /apples.txt")
	if out != "" {
		t.Fatalf("unexpected stdout %q", out)
	}
	data, err := in.ReadFile("/apples.txt")
	if err != abi.OK || string(data) != "apple\napple pie\n" {
		t.Fatalf("apples.txt = %q (%v)", data, err)
	}
}

func TestThreeStagePipeline(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/nums.txt", []byte("3\n1\n2\n1\n"))
	got := runOK(t, in, "cat /nums.txt | sort -n -u | head -n 2")
	if got != "1\n2\n" {
		t.Fatalf("pipeline output %q", got)
	}
}

func TestRedirections(t *testing.T) {
	in := bootBase(t)
	runOK(t, in, "echo one > /f.txt; echo two >> /f.txt")
	data, _ := in.ReadFile("/f.txt")
	if string(data) != "one\ntwo\n" {
		t.Fatalf("f.txt = %q", data)
	}
	// stderr redirection and 2>&1.
	runOK(t, in, "cat /missing 2> /err.txt; true")
	errData, _ := in.ReadFile("/err.txt")
	if !strings.Contains(string(errData), "ENOENT") {
		t.Fatalf("err.txt = %q", errData)
	}
	out := runOK(t, in, "cat /missing 2>&1 | grep -c ENOENT; true")
	if !strings.HasPrefix(out, "1") {
		t.Fatalf("2>&1 merge failed: %q", out)
	}
	// Input redirection.
	in.WriteFile("/in.txt", []byte("redirected\n"))
	if got := runOK(t, in, "cat < /in.txt"); got != "redirected\n" {
		t.Fatalf("< redirection: %q", got)
	}
}

func TestAndOrLists(t *testing.T) {
	in := bootBase(t)
	if got := runOK(t, in, "true && echo yes || echo no"); got != "yes\n" {
		t.Fatalf("&&: %q", got)
	}
	if got := runOK(t, in, "false && echo yes || echo no"); got != "no\n" {
		t.Fatalf("||: %q", got)
	}
	res := in.RunCommand("false; true")
	if res.Code != 0 {
		t.Fatalf("list status: %d", res.Code)
	}
	res = in.RunCommand("true; false")
	if res.Code != 1 {
		t.Fatalf("list status: %d", res.Code)
	}
}

func TestVariablesAndExport(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, `X=browsix; echo "hello $X"`)
	if got != "hello browsix\n" {
		t.Fatalf("var expansion: %q", got)
	}
	// Shell vars don't leak to children; exported ones do.
	got = runOK(t, in, `Y=hidden; env | grep -c '^Y=' ; true`)
	if !strings.HasPrefix(got, "0") {
		t.Fatalf("unexported var leaked: %q", got)
	}
	got = runOK(t, in, `export Z=visible; env | grep -c '^Z='; true`)
	if !strings.HasPrefix(got, "1") {
		t.Fatalf("exported var missing: %q", got)
	}
	// Temporary assignment prefix.
	got = runOK(t, in, `W=temp env | grep '^W='`)
	if got != "W=temp\n" {
		t.Fatalf("temp assignment: %q", got)
	}
}

func TestCommandSubstitution(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, `echo "count=$(echo a b c | wc -w)"`)
	if !strings.Contains(got, "count=") || !strings.Contains(got, "3") {
		t.Fatalf("command substitution: %q", got)
	}
}

func TestGlobbing(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/proj/a.tex", []byte("a"))
	in.WriteFile("/proj/b.tex", []byte("b"))
	in.WriteFile("/proj/c.bib", []byte("c"))
	got := runOK(t, in, "echo /proj/*.tex")
	if got != "/proj/a.tex /proj/b.tex\n" {
		t.Fatalf("glob: %q", got)
	}
	// Unmatched pattern stays literal.
	got = runOK(t, in, "echo /proj/*.pdf")
	if got != "/proj/*.pdf\n" {
		t.Fatalf("unmatched glob: %q", got)
	}
	// Quoted patterns don't glob.
	got = runOK(t, in, `echo "/proj/*.tex"`)
	if got != "/proj/*.tex\n" {
		t.Fatalf("quoted glob: %q", got)
	}
}

func TestIfElifElse(t *testing.T) {
	in := bootBase(t)
	script := `
if [ -f /exists.txt ]; then
  echo have-file
elif [ -d /tmp ]; then
  echo have-tmp
else
  echo nothing
fi`
	got := runOK(t, in, script)
	if got != "have-tmp\n" {
		t.Fatalf("if/elif: %q", got)
	}
	in.WriteFile("/exists.txt", []byte("x"))
	got = runOK(t, in, script)
	if got != "have-file\n" {
		t.Fatalf("if after create: %q", got)
	}
}

func TestWhileAndForLoops(t *testing.T) {
	in := bootBase(t)
	// Counted while loop with arithmetic expansion.
	got := runOK(t, in, `i=0; while [ $i -lt 3 ]; do echo "i=$i"; i=$((i+1)); done`)
	if got != "i=0\ni=1\ni=2\n" {
		t.Fatalf("while loop: %q", got)
	}
	got = runOK(t, in, "for f in alpha beta gamma; do echo item-$f; done")
	if got != "item-alpha\nitem-beta\nitem-gamma\n" {
		t.Fatalf("for loop: %q", got)
	}
	// while driven by test on files.
	in.WriteFile("/flag", []byte("x"))
	got = runOK(t, in, `while [ -f /flag ]; do echo looped; rm /flag; done`)
	if got != "looped\n" {
		t.Fatalf("while loop: %q", got)
	}
	// until loop.
	got = runOK(t, in, `i=0; until [ $i -ge 2 ]; do i=$((i+1)); echo tick; done`)
	if got != "tick\ntick\n" {
		t.Fatalf("until loop: %q", got)
	}
}

func TestArithmeticExpansionInShell(t *testing.T) {
	in := bootBase(t)
	if got := runOK(t, in, `echo $((6 * 7))`); got != "42\n" {
		t.Fatalf("arith: %q", got)
	}
	if got := runOK(t, in, `N=4; echo $((N * N + 1))`); got != "17\n" {
		t.Fatalf("arith with vars: %q", got)
	}
}

func TestSubshell(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, "(cd /tmp && pwd); pwd")
	if got != "/tmp\n/\n" {
		t.Fatalf("subshell isolation: %q", got)
	}
}

func TestBackgroundJobsAndWait(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/w1", []byte("first\n"))
	in.WriteFile("/w2", []byte("second\n"))
	got := runOK(t, in, "cat /w1 & cat /w2 & wait")
	if !strings.Contains(got, "first") || !strings.Contains(got, "second") {
		t.Fatalf("background jobs: %q", got)
	}
}

func TestShellScriptWithShebang(t *testing.T) {
	in := bootBase(t)
	script := `#!/bin/sh
# Build greeting
NAME=$1
echo "hi $NAME from script $0"
exit 5
`
	in.WriteFile("/usr/bin/greet.sh", []byte(script))
	res := in.RunCommand("/usr/bin/greet.sh world")
	if res.Code != 5 {
		t.Fatalf("script exit=%d stderr=%s", res.Code, res.Stderr)
	}
	if !strings.Contains(string(res.Stdout), "hi world from script /usr/bin/greet.sh") {
		t.Fatalf("script out: %q", res.Stdout)
	}
}

func TestPositionalParamsAndShift(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/args.sh", []byte("#!/bin/sh\necho $# $1 $2\nshift\necho $# $1\n"))
	got := runOK(t, in, "/args.sh a b c")
	if got != "3 a b\n2 b\n" {
		t.Fatalf("params: %q", got)
	}
}

func TestXargs(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, "echo one two | xargs echo prefix")
	if got != "prefix one two\n" {
		t.Fatalf("xargs: %q", got)
	}
}

func TestSha1sumMatchesCrypto(t *testing.T) {
	in := bootBase(t)
	payload := []byte("browsix reproduction payload\n")
	in.WriteFile("/payload.bin", payload)
	got := runOK(t, in, "sha1sum /payload.bin")
	want := fmt.Sprintf("%x  /payload.bin\n", sha1.Sum(payload))
	if got != want {
		t.Fatalf("sha1sum = %q, want %q", got, want)
	}
}

func TestWcCounts(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/text", []byte("one two\nthree\n"))
	got := runOK(t, in, "wc -lwc /text")
	f := strings.Fields(got)
	if len(f) < 4 || f[0] != "2" || f[1] != "3" || f[2] != "14" {
		t.Fatalf("wc: %q", got)
	}
}

func TestLsAndMkdirUtilities(t *testing.T) {
	in := bootBase(t)
	runOK(t, in, "mkdir -p /deep/nested/dir")
	runOK(t, in, "touch /deep/nested/dir/file.txt")
	got := runOK(t, in, "ls /deep/nested/dir")
	if got != "file.txt\n" {
		t.Fatalf("ls: %q", got)
	}
	got = runOK(t, in, "ls -l /deep/nested")
	if !strings.Contains(got, "d") || !strings.Contains(got, "dir") {
		t.Fatalf("ls -l: %q", got)
	}
	runOK(t, in, "rm -r /deep")
	if _, err := in.Stat("/deep"); err != abi.ENOENT {
		t.Fatal("rm -r left debris")
	}
}

func TestCpAndTee(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/src.txt", []byte("copy me\n"))
	runOK(t, in, "cp /src.txt /dst.txt")
	data, _ := in.ReadFile("/dst.txt")
	if string(data) != "copy me\n" {
		t.Fatalf("cp: %q", data)
	}
	got := runOK(t, in, "echo teed | tee /tee1 /tee2")
	if got != "teed\n" {
		t.Fatalf("tee stdout: %q", got)
	}
	d1, _ := in.ReadFile("/tee1")
	d2, _ := in.ReadFile("/tee2")
	if string(d1) != "teed\n" || string(d2) != "teed\n" {
		t.Fatalf("tee files: %q %q", d1, d2)
	}
}

func TestGrepModes(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/g.txt", []byte("alpha\nbeta\ngamma\nalpha beta\n"))
	if got := runOK(t, in, "grep -n alpha /g.txt"); got != "1:alpha\n4:alpha beta\n" {
		t.Fatalf("grep -n: %q", got)
	}
	if got := runOK(t, in, "grep -v alpha /g.txt"); got != "beta\ngamma\n" {
		t.Fatalf("grep -v: %q", got)
	}
	res := in.RunCommand("grep nomatch /g.txt")
	if res.Code != 1 {
		t.Fatalf("grep no-match exit=%d", res.Code)
	}
}

func TestHeadTailSeq(t *testing.T) {
	in := bootBase(t)
	if got := runOK(t, in, "seq 5 | head -n 2"); got != "1\n2\n" {
		t.Fatalf("head: %q", got)
	}
	if got := runOK(t, in, "seq 5 | tail -n 2"); got != "4\n5\n" {
		t.Fatalf("tail: %q", got)
	}
}

func TestExitBuiltinStopsScript(t *testing.T) {
	in := bootBase(t)
	res := in.RunCommand("echo before; exit 9; echo after")
	if res.Code != 9 || string(res.Stdout) != "before\n" {
		t.Fatalf("exit: code=%d out=%q", res.Code, res.Stdout)
	}
}

func TestShellExecBuiltin(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, "exec echo replaced")
	if got != "replaced\n" {
		t.Fatalf("exec builtin: %q", got)
	}
}

func TestSourceBuiltin(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/lib.sh", []byte("GREETING=sourced\n"))
	got := runOK(t, in, ". /lib.sh; echo $GREETING")
	if got != "sourced\n" {
		t.Fatalf("source: %q", got)
	}
}

func TestTestBuiltinExpressions(t *testing.T) {
	in := bootBase(t)
	cases := []struct {
		expr string
		want int
	}{
		{"[ foo = foo ]", 0},
		{"[ foo = bar ]", 1},
		{"[ foo != bar ]", 0},
		{"[ 3 -lt 5 ]", 0},
		{"[ 5 -lt 3 ]", 1},
		{"[ -z '' ]", 0},
		{"[ -n '' ]", 1},
		{"[ ! -f /nope ]", 0},
		{"[ -d /tmp ]", 0},
	}
	for _, c := range cases {
		res := in.RunCommand(c.expr)
		if res.Code != c.want {
			t.Errorf("%s -> %d, want %d", c.expr, res.Code, c.want)
		}
	}
}

func TestEnvAndMotd(t *testing.T) {
	in := bootBase(t)
	got := runOK(t, in, "env")
	if !strings.Contains(got, "PATH=/usr/bin:/bin") {
		t.Fatalf("env: %q", got)
	}
	got = runOK(t, in, "cat /etc/motd")
	if !strings.Contains(got, "Browsix") {
		t.Fatalf("motd: %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	// Identical boots must produce identical outputs AND identical
	// virtual timings — the property every experiment relies on.
	run := func() (string, int64) {
		in := bootBase(t)
		in.WriteFile("/d.txt", []byte("b\na\nc\n"))
		res := in.RunCommand("cat /d.txt | sort | tee /sorted.txt | wc -l")
		return string(res.Stdout), res.Elapsed
	}
	out1, t1 := run()
	out2, t2 := run()
	if out1 != out2 || t1 != t2 {
		t.Fatalf("nondeterminism: (%q,%d) vs (%q,%d)", out1, t1, out2, t2)
	}
}
