package browsix_test

// Benchmark harness: one benchmark per table/figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Wall-clock time measures the *simulator*; the quantity corresponding to
// the paper's measurements is the simulated browser time, reported as the
// custom metric "virtual-ms/op" (and µs for the syscall microbenchmarks).
// EXPERIMENTS.md tabulates paper-vs-measured for every row.
//
// Regenerate everything in human-readable form with:
//
//	go run ./cmd/experiments

import (
	"testing"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/coreutils"
	"repro/internal/expt"
	"repro/internal/meme"
	"repro/internal/rt"
	"repro/internal/sched"
)

// reportVirtual runs fn b.N times, reporting its virtual-ns result as
// virtual milliseconds per operation.
func reportVirtual(b *testing.B, fn func() int64) {
	b.Helper()
	var total int64
	for i := 0; i < b.N; i++ {
		total += fn()
	}
	b.ReportMetric(float64(total)/float64(b.N)/1e6, "virtual-ms/op")
}

// ---------------------------------------------------------------------------
// Figure 9: sha1sum and ls under Native / Node.js / Browsix.
// ---------------------------------------------------------------------------

func BenchmarkFig9_Sha1sum_Native(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("sha1sum", "/usr/bin/node").NativeNs })
}

func BenchmarkFig9_Sha1sum_NodeJS(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("sha1sum", "/usr/bin/node").NodeNs })
}

func BenchmarkFig9_Sha1sum_Browsix(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("sha1sum", "/usr/bin/node").BrowsixNs })
}

func BenchmarkFig9_Ls_Native(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("ls", "/usr/bin").NativeNs })
}

func BenchmarkFig9_Ls_NodeJS(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("ls", "/usr/bin").NodeNs })
}

func BenchmarkFig9_Ls_Browsix(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Fig9("ls", "/usr/bin").BrowsixNs })
}

// ---------------------------------------------------------------------------
// §5.2 LaTeX editor: native ~100ms, Browsix sync ~3s, Browsix async ~12s.
// ---------------------------------------------------------------------------

func BenchmarkLatex_NativePdflatex(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Latex().NativeNs })
}

func BenchmarkLatex_BrowsixSyncSyscalls(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Latex().SyncNs })
}

func BenchmarkLatex_BrowsixAsyncEmterpreter(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Latex().AsyncNs })
}

// ---------------------------------------------------------------------------
// §5.2 meme generator: list 1.7/9/6 ms, WAN ~3x, generate 200ms vs ~2s.
// ---------------------------------------------------------------------------

func BenchmarkMeme_List_NativeLocalServer(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().ListLocalServerNs })
}

func BenchmarkMeme_List_BrowsixChrome(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().ListChromeNs })
}

func BenchmarkMeme_List_BrowsixFirefox(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().ListFirefoxNs })
}

func BenchmarkMeme_List_RemoteWAN(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().ListEC2Ns })
}

func BenchmarkMeme_Generate_NativeServer(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().GenServerNs })
}

func BenchmarkMeme_Generate_BrowsixGopherJS(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.Meme().GenBrowsixNs })
}

// ---------------------------------------------------------------------------
// §3.2 / §6: per-syscall transport cost (async ≈ 10^3 × native; sync
// several times cheaper than async).
// ---------------------------------------------------------------------------

func reportSyscall(b *testing.B, pick func(expt.SyscallBench) int64) {
	b.Helper()
	var total int64
	for i := 0; i < b.N; i++ {
		total += pick(expt.MeasureSyscalls())
	}
	b.ReportMetric(float64(total)/float64(b.N)/1e3, "virtual-us/call")
}

func BenchmarkSyscallTransport_NativeLinux(b *testing.B) {
	reportSyscall(b, func(s expt.SyscallBench) int64 { return s.NativeNs })
}

func BenchmarkSyscallTransport_BrowsixSync(b *testing.B) {
	reportSyscall(b, func(s expt.SyscallBench) int64 { return s.SyncNs })
}

func BenchmarkSyscallTransport_BrowsixAsync(b *testing.B) {
	reportSyscall(b, func(s expt.SyscallBench) int64 { return s.AsyncNs })
}

func BenchmarkSyscallTransport_BrowsixAsyncEmterpreter(b *testing.B) {
	reportSyscall(b, func(s expt.SyscallBench) int64 { return s.AsyncEmterpNs })
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

// BenchmarkAblation_LazyOverlay vs Eager reproduces the §3.6 design
// choice: Browsix made the overlay underlay lazy; the original BrowserFS
// behaviour read the whole read-only tree at initialization.
func BenchmarkAblation_LazyOverlay(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.MeasureLazyAblation().LazyNs })
}

func BenchmarkAblation_EagerOverlay(b *testing.B) {
	reportVirtual(b, func() int64 { return expt.MeasureLazyAblation().EagerNs })
}

// BenchmarkAblation_PostMessageSize sweeps structured-clone payload sizes,
// the cost §6 complains about ("message passing is three orders of
// magnitude slower than traditional system calls").
func BenchmarkAblation_PostMessageSize(b *testing.B) {
	for _, size := range []int{16, 1 << 10, 64 << 10, 1 << 20} {
		size := size
		b.Run(byteSizeName(size), func(b *testing.B) {
			reportVirtual(b, func() int64 {
				sim := sched.New()
				sim.MaxSteps = 1_000_000
				sys := browser.NewSystem(sim, browser.Chrome())
				url := sys.CreateObjectURL([]byte("w"))
				var w *browser.Worker
				var delivered int64
				sim.Post(sys.Main.Sched(), 0, func() {
					w = sys.NewWorker(sys.Main, url, func(w *browser.Worker) {
						w.Ctx.OnMessage = func(browser.Value) { delivered = w.Ctx.Now() }
					})
				})
				sim.Run() // let the worker finish starting
				var sent int64
				sim.Post(sys.Main.Sched(), sim.Now(), func() {
					sent = sys.Main.Now()
					w.PostMessage(make([]byte, size))
				})
				sim.Run()
				return delivered - sent
			})
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_PipeThroughput measures kernel pipe bandwidth through
// a real two-process pipeline (cat | wc -c on a 1 MiB file).
func BenchmarkAblation_PipeThroughput(b *testing.B) {
	reportVirtual(b, func() int64 {
		in := browsix.Boot(browsix.Config{})
		browsix.InstallBase(in)
		in.WriteFile("/big.bin", make([]byte, 1<<20))
		res := in.RunCommand("cat /big.bin | wc -c")
		if res.Code != 0 {
			b.Fatalf("pipeline failed: %s", res.Stderr)
		}
		return res.Elapsed
	})
}

// BenchmarkAblation_SpawnLatency measures process creation end-to-end
// (worker start + runtime boot + init message + exit), the fixed cost
// behind every Figure 9 Browsix row.
func BenchmarkAblation_SpawnLatency(b *testing.B) {
	reportVirtual(b, func() int64 {
		in := browsix.Boot(browsix.Config{})
		browsix.InstallBase(in)
		return in.RunCommand("true").Elapsed
	})
}

// ---------------------------------------------------------------------------
// Checkpoint/fork subsystem (internal/snapshot): the Nth spawn of a
// runtime as a copy-on-write clone of its post-boot image versus a full
// cold boot. CI smoke-runs both and guards the ratio (>= 5x, also pinned
// deterministically by TestForkSpawnRatioGuard).
// ---------------------------------------------------------------------------

// forkSpawnElapsed measures the second spawn of a Node-runtime utility:
// a cold boot when snapshots are off, a clone boot when on (the first
// spawn captured the image). Cache state is identical either way.
func forkSpawnElapsed(snaps bool) int64 {
	in := browsix.Boot(browsix.Config{EnableSnapshots: snaps})
	browsix.InstallBase(in)
	in.RunCommand("echo warm")
	return in.RunCommand("echo measured").Elapsed
}

func BenchmarkForkSpawn(b *testing.B) {
	reportVirtual(b, func() int64 { return forkSpawnElapsed(true) })
}

func BenchmarkColdSpawn(b *testing.B) {
	reportVirtual(b, func() int64 { return forkSpawnElapsed(false) })
}

// ---------------------------------------------------------------------------
// Ring-transport / vectored-pipe benchmarks. BenchmarkPipe* measures the
// kernel pipe data plane itself (real wall-clock MB/s via b.SetBytes):
// the scalar path copies every chunk into the pipe; the vectored path
// moves owned 64 KiB buffers through WriteOwned/Splice and recycles them,
// the zero-copy discipline the ring transport's splice path uses.
// ---------------------------------------------------------------------------

const pipeBenchChunk = 64 * 1024
const pipeBenchChunks = 64 // 4 MiB per op

func BenchmarkPipeScalar(b *testing.B) {
	b.SetBytes(pipeBenchChunk * pipeBenchChunks)
	src := make([]byte, pipeBenchChunk)
	for i := range src {
		src[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipe()
		for c := 0; c < pipeBenchChunks; c++ {
			p.Write(src, func(int, abi.Errno) {})
			var got int
			p.Read(pipeBenchChunk, func(bts []byte, err abi.Errno) { got = len(bts) })
			if got != pipeBenchChunk {
				b.Fatalf("short read: %d", got)
			}
		}
	}
}

func BenchmarkPipeVectored(b *testing.B) {
	b.SetBytes(pipeBenchChunk * pipeBenchChunks)
	buf := make([]byte, pipeBenchChunk)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipe()
		for c := 0; c < pipeBenchChunks; c++ {
			p.WriteOwned([][]byte{buf}, func(int, abi.Errno) {})
			var got [][]byte
			p.Splice(pipeBenchChunk, func(segs [][]byte, err abi.Errno) { got = segs })
			if len(got) != 1 || len(got[0]) != pipeBenchChunk {
				b.Fatal("short splice")
			}
			buf = got[0] // recycle the buffer that crossed the pipe
		}
	}
}

// BenchmarkRingTransport runs the paper's pipe benchmark (cat | wc -c on
// a 1 MiB file) with the coreutils on a synchronous runtime, comparing
// the ring transport against the scalar sync fallback and the async
// transport. Virtual time is the quantity of interest (virtual-ms/op);
// b.SetBytes additionally reports harness wall-clock MB/s.
func BenchmarkRingTransport(b *testing.B) {
	const payload = 1 << 20
	stage := func(sync bool, disableRing bool) *browsix.Instance {
		in := browsix.Boot(browsix.Config{})
		browsix.InstallBase(in)
		in.Kernel.DisableRing = disableRing
		if sync {
			image := map[string][]byte{}
			for _, name := range coreutils.Names() {
				rt.InstallExecutable(image, "/usr/bin/"+name, name, rt.WasmKind)
			}
			for p, data := range image {
				in.WriteFile(p, data)
			}
		}
		in.WriteFile("/big.bin", make([]byte, payload))
		return in
	}
	for _, cfg := range []struct {
		name    string
		sync    bool
		disable bool
	}{
		{"ring", true, false},
		{"sync-scalar", true, true},
		{"async", false, false},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(payload)
			reportVirtual(b, func() int64 {
				in := stage(cfg.sync, cfg.disable)
				res := in.RunCommand("cat /big.bin | wc -c")
				if res.Code != 0 {
					b.Fatalf("pipeline failed: %s", res.Stderr)
				}
				return res.Elapsed
			})
		})
	}
}

// BenchmarkMemeCompose measures the real (wall-clock) Go cost of the
// image-composition code itself — the work whose virtual cost the int64
// penalty scales. This one reports actual ns/op, not virtual time.
func BenchmarkMemeCompose(b *testing.B) {
	font, err := meme.ParseFont(meme.FontFile())
	if err != nil {
		b.Fatal(err)
	}
	assets := &meme.Assets{Font: font, Templates: meme.Templates()}
	tpl := assets.Templates["doge"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, _ := assets.Compose(tpl, "MUCH UNIX", "VERY BROWSER")
		if img.W != tpl.W {
			b.Fatal("compose broke the image")
		}
	}
}

// BenchmarkMemeServerLoad measures the event-loop server's sustained
// throughput under the 1000-client open-loop keep-alive swarm, reporting
// virtual requests/sec alongside the wall cost of simulating the run.
func BenchmarkMemeServerLoad(b *testing.B) {
	var rps int64
	for i := 0; i < b.N; i++ {
		in := bootMemeLoad(b, true, false)
		in.StartMemeServerArgs()
		s := healthSwarm(1000, 3, true)
		s.OpenLoop = true
		rep := browsix.RunSwarm(in, s, meme.Port)
		if rep.Requests != 3000 || rep.Errors != 0 {
			b.Fatalf("swarm dropped requests: %+v", rep)
		}
		rps = rep.RPSx1000
	}
	b.ReportMetric(float64(rps)/1000, "virtual-req/s")
}
