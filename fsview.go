package browsix

import (
	"io"
	iofs "io/fs"
	"path"
	"time"

	"repro/internal/abi"
	"repro/internal/fs"
)

// This file is the file-system half of the public API: a Go-native,
// synchronous io/fs facade over the kernel's CPS VFS. Every operation
// posts to the simulated main thread through Instance.drive and runs the
// simulation until the VFS completes — lazy HTTP fetches, overlay
// copy-ups and all — so ordinary Go code (io/fs walkers, testing/fstest,
// html/template.ParseFS, ...) works against any mounted backend.

// FS returns the io/fs facade rooted at the instance's "/". The view
// implements fs.FS, fs.ReadDirFS, fs.StatFS, fs.ReadFileFS, fs.GlobFS
// and fs.SubFS, plus the write-side extensions below.
func (in *Instance) FS() *FSView { return &FSView{in: in, root: "/"} }

// FSView is a synchronous file-system view rooted at a directory of the
// instance's VFS. io/fs naming rules apply: paths are slash-separated,
// relative, and "." names the root of the view.
type FSView struct {
	in   *Instance
	root string // absolute VFS path, no trailing slash except "/"
}

// Interface conformance (the facade's contract with the stdlib).
var (
	_ iofs.FS         = (*FSView)(nil)
	_ iofs.ReadDirFS  = (*FSView)(nil)
	_ iofs.StatFS     = (*FSView)(nil)
	_ iofs.ReadFileFS = (*FSView)(nil)
	_ iofs.GlobFS     = (*FSView)(nil)
	_ iofs.SubFS      = (*FSView)(nil)
)

// abs maps an io/fs name into the VFS, rejecting invalid names.
func (v *FSView) abs(op, name string) (string, error) {
	if !iofs.ValidPath(name) {
		return "", &iofs.PathError{Op: op, Path: name, Err: iofs.ErrInvalid}
	}
	if name == "." {
		return v.root, nil
	}
	if v.root == "/" {
		return "/" + name, nil
	}
	return v.root + "/" + name, nil
}

// errnoErr adapts a kernel errno into the error chain: the result
// errors.Is-matches both the exact Errno and, where one exists, the
// io/fs sentinel (fs.ErrNotExist, ...), so stdlib callers and
// errno-precise callers both work.
func errnoErr(e Errno) error {
	var sentinel error
	switch e {
	case abi.ENOENT:
		sentinel = iofs.ErrNotExist
	case abi.EEXIST:
		sentinel = iofs.ErrExist
	case abi.EINVAL:
		sentinel = iofs.ErrInvalid
	case abi.EPERM, abi.EACCES:
		sentinel = iofs.ErrPermission
	default:
		return e
	}
	return &errnoCause{errno: e, sentinel: sentinel}
}

// errnoCause carries a kernel errno alongside its io/fs sentinel:
// errors.Is matches the errno directly (Is) and the sentinel through
// Unwrap.
type errnoCause struct {
	errno    Errno
	sentinel error
}

func (c *errnoCause) Error() string        { return c.errno.String() }
func (c *errnoCause) Unwrap() error        { return c.sentinel }
func (c *errnoCause) Is(target error) bool { return target == error(c.errno) }

func pathErr(op, name string, e Errno) error {
	return &iofs.PathError{Op: op, Path: name, Err: errnoErr(e)}
}

// Open opens a file or directory for reading. Directories implement
// fs.ReadDirFile.
func (v *FSView) Open(name string) (iofs.File, error) {
	ap, err := v.abs("open", name)
	if err != nil {
		return nil, err
	}
	// One drive round trip: stat, and for regular files continue
	// straight into the backend open inside the same simulator event
	// chain (no host-visible window between the two).
	var st abi.Stat
	var h fs.FileHandle
	serr := Errno(-1)
	if !v.in.drive(func(done func()) {
		v.in.VFS.Stat(ap, func(s abi.Stat, e Errno) {
			st, serr = s, e
			if e != abi.OK || s.IsDir() {
				done()
				return
			}
			v.in.VFS.Open(ap, abi.O_RDONLY, 0, func(fh fs.FileHandle, e2 Errno) {
				h, serr = fh, e2
				done()
			})
		})
	}) {
		return nil, v.in.deadlockErr("open " + name)
	}
	if serr != abi.OK {
		return nil, pathErr("open", name, serr)
	}
	base := path.Base(name)
	if st.IsDir() {
		return &viewDir{v: v, name: name, info: fileInfo{base, st}}, nil
	}
	return &viewFile{v: v, name: name, h: h, info: fileInfo{base, st}}, nil
}

// ReadDir lists a directory, sorted by name (the VFS already sorts).
func (v *FSView) ReadDir(name string) ([]iofs.DirEntry, error) {
	ap, err := v.abs("readdir", name)
	if err != nil {
		return nil, err
	}
	var ents []abi.Dirent
	rerr := Errno(-1)
	if !v.in.drive(func(done func()) {
		v.in.VFS.Readdir(ap, func(es []abi.Dirent, e Errno) { ents, rerr = es, e; done() })
	}) {
		return nil, v.in.deadlockErr("readdir " + name)
	}
	if rerr != abi.OK {
		return nil, pathErr("readdir", name, rerr)
	}
	out := make([]iofs.DirEntry, len(ents))
	for i, e := range ents {
		out[i] = &dirEntry{v: v, dir: name, ent: e}
	}
	return out, nil
}

// Stat stats a path, following symlinks.
func (v *FSView) Stat(name string) (iofs.FileInfo, error) {
	ap, err := v.abs("stat", name)
	if err != nil {
		return nil, err
	}
	var st abi.Stat
	serr := Errno(-1)
	if !v.in.drive(func(done func()) {
		v.in.VFS.Stat(ap, func(s abi.Stat, e Errno) { st, serr = s, e; done() })
	}) {
		return nil, v.in.deadlockErr("stat " + name)
	}
	if serr != abi.OK {
		return nil, pathErr("stat", name, serr)
	}
	return fileInfo{path.Base(name), st}, nil
}

// ReadFile slurps a file, driving any lazy backend fetch it needs.
func (v *FSView) ReadFile(name string) ([]byte, error) {
	ap, err := v.abs("readfile", name)
	if err != nil {
		return nil, err
	}
	var data []byte
	rerr := Errno(-1)
	if !v.in.drive(func(done func()) {
		v.in.VFS.ReadFile(ap, func(b []byte, e Errno) { data, rerr = b, e; done() })
	}) {
		return nil, v.in.deadlockErr("readfile " + name)
	}
	if rerr != abi.OK {
		return nil, pathErr("readfile", name, rerr)
	}
	// The VFS may hand out page-cache-backed bytes; the io/fs contract
	// is that the caller owns the result.
	return append([]byte(nil), data...), nil
}

// Glob returns the names matching pattern, with path.Match semantics.
func (v *FSView) Glob(pattern string) ([]string, error) {
	// Delegate to fs.Glob over a shim that hides this method, keeping
	// exactly the stdlib's semantics while every directory listing runs
	// through the (cached) VFS Readdir.
	return iofs.Glob(globShim{v}, pattern)
}

// globShim exposes the view without GlobFS so fs.Glob does the walking.
type globShim struct{ v *FSView }

func (g globShim) Open(name string) (iofs.File, error)          { return g.v.Open(name) }
func (g globShim) ReadDir(name string) ([]iofs.DirEntry, error) { return g.v.ReadDir(name) }

// Sub returns the view rooted at dir. The result is a *FSView, so the
// write extensions remain available behind a type assertion.
func (v *FSView) Sub(dir string) (iofs.FS, error) {
	if dir == "." {
		return v, nil
	}
	ap, err := v.abs("sub", dir)
	if err != nil {
		return nil, err
	}
	return &FSView{in: v.in, root: ap}, nil
}

// ---------------------------------------------------------------------------
// Write-side extensions (beyond io/fs, which is read-only).
// ---------------------------------------------------------------------------

// driveErr runs one CPS errno operation to completion.
func (v *FSView) driveErr(op, name string, fn func(cb func(Errno))) error {
	out := Errno(-1)
	if !v.in.drive(func(done func()) {
		fn(func(e Errno) { out = e; done() })
	}) {
		return v.in.deadlockErr(op + " " + name)
	}
	if out != abi.OK {
		return pathErr(op, name, out)
	}
	return nil
}

// WriteFile creates or truncates name with data.
func (v *FSView) WriteFile(name string, data []byte, perm iofs.FileMode) error {
	ap, err := v.abs("writefile", name)
	if err != nil {
		return err
	}
	return v.driveErr("writefile", name, func(cb func(Errno)) {
		v.in.VFS.WriteFile(ap, data, uint32(perm.Perm()), cb)
	})
}

// Mkdir creates a single directory.
func (v *FSView) Mkdir(name string, perm iofs.FileMode) error {
	ap, err := v.abs("mkdir", name)
	if err != nil {
		return err
	}
	return v.driveErr("mkdir", name, func(cb func(Errno)) {
		v.in.VFS.Mkdir(ap, uint32(perm.Perm()), cb)
	})
}

// MkdirAll creates a directory and any missing parents.
func (v *FSView) MkdirAll(name string, perm iofs.FileMode) error {
	ap, err := v.abs("mkdirall", name)
	if err != nil {
		return err
	}
	return v.driveErr("mkdirall", name, func(cb func(Errno)) {
		v.in.VFS.MkdirAll(ap, uint32(perm.Perm()), cb)
	})
}

// Remove removes a file, symlink, or empty directory.
func (v *FSView) Remove(name string) error {
	ap, err := v.abs("remove", name)
	if err != nil {
		return err
	}
	return v.driveErr("remove", name, func(cb func(Errno)) {
		v.in.VFS.Lstat(ap, func(st abi.Stat, e Errno) {
			if e != abi.OK {
				cb(e)
				return
			}
			if st.IsDir() {
				v.in.VFS.Rmdir(ap, cb)
				return
			}
			v.in.VFS.Unlink(ap, cb)
		})
	})
}

// Rename moves oldname to newname (same backend; EXDEV otherwise).
func (v *FSView) Rename(oldname, newname string) error {
	op, err := v.abs("rename", oldname)
	if err != nil {
		return err
	}
	np, err := v.abs("rename", newname)
	if err != nil {
		return err
	}
	return v.driveErr("rename", oldname+" -> "+newname, func(cb func(Errno)) {
		v.in.VFS.Rename(op, np, cb)
	})
}

// Symlink creates newname as a symbolic link to target. target is kept
// verbatim (it may be relative to newname's directory, like ln -s).
func (v *FSView) Symlink(target, newname string) error {
	np, err := v.abs("symlink", newname)
	if err != nil {
		return err
	}
	return v.driveErr("symlink", newname, func(cb func(Errno)) {
		v.in.VFS.Symlink(target, np, cb)
	})
}

// ---------------------------------------------------------------------------
// fs.File / fs.ReadDirFile / fs.FileInfo / fs.DirEntry adapters.
// ---------------------------------------------------------------------------

// viewFile adapts a VFS file handle to fs.File; reads drive the sim.
type viewFile struct {
	v      *FSView
	name   string
	h      fs.FileHandle
	info   fileInfo
	off    int64
	closed bool
}

func (f *viewFile) Stat() (iofs.FileInfo, error) { return f.info, nil }

func (f *viewFile) Read(b []byte) (int, error) {
	if f.closed {
		return 0, &iofs.PathError{Op: "read", Path: f.name, Err: iofs.ErrClosed}
	}
	if len(b) == 0 {
		return 0, nil
	}
	var data []byte
	rerr := Errno(-1)
	if !f.v.in.drive(func(done func()) {
		f.h.Pread(f.off, len(b), func(d []byte, e Errno) { data, rerr = d, e; done() })
	}) {
		return 0, f.v.in.deadlockErr("read " + f.name)
	}
	if rerr != abi.OK {
		return 0, pathErr("read", f.name, rerr)
	}
	if len(data) == 0 {
		return 0, io.EOF
	}
	n := copy(b, data)
	f.off += int64(n)
	return n, nil
}

func (f *viewFile) Close() error {
	if f.closed {
		return &iofs.PathError{Op: "close", Path: f.name, Err: iofs.ErrClosed}
	}
	f.closed = true
	f.v.in.drive(func(done func()) { f.h.Close(func(Errno) { done() }) })
	return nil
}

// viewDir adapts a directory to fs.ReadDirFile with paged ReadDir.
type viewDir struct {
	v      *FSView
	name   string
	info   fileInfo
	ents   []iofs.DirEntry
	loaded bool
	off    int
	closed bool
}

func (d *viewDir) Stat() (iofs.FileInfo, error) { return d.info, nil }
func (d *viewDir) Read([]byte) (int, error) {
	return 0, &iofs.PathError{Op: "read", Path: d.name, Err: iofs.ErrInvalid}
}
func (d *viewDir) Close() error { d.closed = true; return nil }

func (d *viewDir) ReadDir(n int) ([]iofs.DirEntry, error) {
	if d.closed {
		return nil, &iofs.PathError{Op: "readdir", Path: d.name, Err: iofs.ErrClosed}
	}
	if !d.loaded {
		ents, err := d.v.ReadDir(d.name)
		if err != nil {
			return nil, err
		}
		d.ents, d.loaded = ents, true
	}
	rest := d.ents[d.off:]
	if n <= 0 {
		d.off = len(d.ents)
		return rest, nil
	}
	if len(rest) == 0 {
		return nil, io.EOF
	}
	if n > len(rest) {
		n = len(rest)
	}
	d.off += n
	return rest[:n], nil
}

// fileInfo adapts abi.Stat to fs.FileInfo. ModTime is virtual time
// (nanoseconds since boot).
type fileInfo struct {
	name string
	st   abi.Stat
}

func (fi fileInfo) Name() string        { return fi.name }
func (fi fileInfo) Size() int64         { return fi.st.Size }
func (fi fileInfo) Mode() iofs.FileMode { return fileMode(fi.st.Mode) }
func (fi fileInfo) ModTime() time.Time  { return time.Unix(0, fi.st.Mtime) }
func (fi fileInfo) IsDir() bool         { return fi.st.IsDir() }
func (fi fileInfo) Sys() any            { return fi.st }

func fileMode(mode uint32) iofs.FileMode {
	m := iofs.FileMode(mode & 0o777)
	switch mode & abi.S_IFMT {
	case abi.S_IFDIR:
		m |= iofs.ModeDir
	case abi.S_IFLNK:
		m |= iofs.ModeSymlink
	case abi.S_IFIFO:
		m |= iofs.ModeNamedPipe
	case abi.S_IFSOCK:
		m |= iofs.ModeSocket
	case abi.S_IFCHR:
		m |= iofs.ModeDevice | iofs.ModeCharDevice
	}
	return m
}

// dirEntry adapts abi.Dirent; Info is resolved lazily with lstat
// semantics, as os.ReadDir documents.
type dirEntry struct {
	v   *FSView
	dir string
	ent abi.Dirent
}

func (e *dirEntry) Name() string { return e.ent.Name }
func (e *dirEntry) IsDir() bool  { return e.ent.Type == abi.DT_DIR }

func (e *dirEntry) Type() iofs.FileMode {
	switch e.ent.Type {
	case abi.DT_DIR:
		return iofs.ModeDir
	case abi.DT_LNK:
		return iofs.ModeSymlink
	case abi.DT_FIFO:
		return iofs.ModeNamedPipe
	case abi.DT_SOCK:
		return iofs.ModeSocket
	case abi.DT_CHR:
		return iofs.ModeDevice | iofs.ModeCharDevice
	}
	return 0
}

func (e *dirEntry) Info() (iofs.FileInfo, error) {
	child := e.ent.Name
	if e.dir != "." {
		child = e.dir + "/" + e.ent.Name
	}
	ap, err := e.v.abs("stat", child)
	if err != nil {
		return nil, err
	}
	var st abi.Stat
	serr := Errno(-1)
	if !e.v.in.drive(func(done func()) {
		e.v.in.VFS.Lstat(ap, func(s abi.Stat, er Errno) { st, serr = s, er; done() })
	}) {
		return nil, e.v.in.deadlockErr("stat " + child)
	}
	if serr != abi.OK {
		return nil, pathErr("stat", child, serr)
	}
	return fileInfo{e.ent.Name, st}, nil
}
