package browsix_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/posix"
	"repro/internal/rt"
)

// TestFigure3SyscallCoverage asserts the kernel's syscall table contains
// everything Figure 3 lists, and that a representative of each class
// actually dispatches (non-ENOSYS) through the async transport.
func TestFigure3SyscallCoverage(t *testing.T) {
	table := core.SyscallTable()
	figure3 := map[string][]string{
		"Process Management": {"fork", "spawn", "pipe2", "wait4", "exit"},
		"Process Metadata":   {"chdir", "getcwd", "getpid"},
		"Sockets":            {"socket", "bind", "getsockname", "listen", "accept", "connect"},
		"Directory IO":       {"readdir", "getdents", "rmdir", "mkdir"},
		"File IO":            {"open", "close", "unlink", "llseek", "pread", "pwrite"},
		"File Metadata":      {"access", "fstat", "lstat", "stat", "readlink", "utimes"},
	}
	for class, calls := range figure3 {
		have := map[string]bool{}
		for _, c := range table[class] {
			have[c] = true
		}
		for _, c := range calls {
			if !have[c] {
				t.Errorf("Figure 3 syscall %s missing from class %s", c, class)
			}
		}
	}
}

// TestFigure2Inventory sanity-checks that the component inventory used by
// cmd/experiments corresponds to real directories with real code.
func TestFigure2Inventory(t *testing.T) {
	// A cheap proxy: the packages must at least register their programs
	// and types; compile-time imports in this test assert existence.
	if len(posix.ProgramNames()) < 25 {
		t.Fatalf("only %d programs registered; expected the full busybox set", len(posix.ProgramNames()))
	}
}

// TestTable1FeatureMatrix executes a capability probe per Table 1 cell
// for the BROWSIX row (the non-Browsix rows are definitionally lacking
// the features — nothing to run).
func TestTable1FeatureMatrix(t *testing.T) {
	in := bootBase(t)
	// Filesystem (shared, multi-process): two processes observe each
	// other's writes.
	runOK(t, in, "echo cross-process > /t1")
	if got := runOK(t, in, "cat /t1"); got != "cross-process\n" {
		t.Fatal("shared filesystem")
	}
	// Pipes + processes.
	if got := runOK(t, in, "echo p | cat | cat"); got != "p\n" {
		t.Fatal("pipes/processes")
	}
	// Signals, socket server + client: covered by dedicated tests; this
	// asserts the registry claims match the kernel table.
	table := core.SyscallTable()
	for _, class := range []string{"Sockets", "Process Management"} {
		if len(table[class]) == 0 {
			t.Fatalf("class %s empty", class)
		}
	}
}

func init() {
	// Probe programs for the wasm and sync-kill tests (the t-* programs
	// in internal/core's tests live in a different test binary).
	posix.Register(&posix.Program{Name: "x-fsops", Main: func(p posix.Proc) int {
		if err := p.Mkdir("/xw", 0o755); err != abi.OK {
			return 1
		}
		if err := posix.WriteFile(p, "/xw/f", []byte("data"), 0o644); err != abi.OK {
			return 2
		}
		b, err := posix.ReadFile(p, "/xw/f")
		if err != abi.OK || string(b) != "data" {
			return 3
		}
		for i := 0; i < 50; i++ {
			if _, err := p.Stat("/xw/f"); err != abi.OK {
				return 4
			}
		}
		p.Unlink("/xw/f")
		p.Rmdir("/xw")
		posix.Fprintf(p, abi.Stdout, "fsok runtime=%s\n", p.RuntimeName())
		return 0
	}})
	posix.Register(&posix.Program{Name: "x-server", Main: func(p posix.Proc) int {
		fd, _ := p.Socket()
		if err := p.Bind(fd, 8080); err != abi.OK {
			return 1
		}
		if err := p.Listen(fd, 4); err != abi.OK {
			return 2
		}
		p.Accept(fd) // blocks forever; the test SIGKILLs us here
		return 0
	}})
}

// TestWasmExecutable runs a program installed as a WebAssembly executable
// (§3.3) — sync transport, faster than asm.js.
func TestWasmExecutable(t *testing.T) {
	in := bootBase(t)
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/wasm-fsops", "x-fsops", rt.WasmKind)
	for p, b := range image {
		in.WriteFile(p, b)
	}
	res := in.RunCommand("/usr/bin/wasm-fsops")
	if res.Code != 0 {
		t.Fatalf("wasm program exited %d: %s", res.Code, res.Stderr)
	}
	if !strings.Contains(string(res.Stdout), "runtime=wasm") {
		t.Fatalf("stdout: %s", res.Stdout)
	}
	if in.Kernel.SyncSyscalls.Load() == 0 {
		t.Fatal("wasm runtime should use the synchronous transport")
	}
}

// TestWasmFasterThanAsmJS checks the §6-adjacent expectation that wasm
// outperforms asm.js on the same workload.
func TestWasmFasterThanAsmJS(t *testing.T) {
	run := func(kind rt.Kind) int64 {
		in := bootBase(t)
		image := map[string][]byte{}
		rt.InstallExecutable(image, "/usr/bin/prog", "x-fsops", kind)
		for p, b := range image {
			in.WriteFile(p, b)
		}
		res := in.RunCommand("/usr/bin/prog")
		if res.Code != 0 {
			t.Fatalf("%s exited %d", kind, res.Code)
		}
		return res.Elapsed
	}
	wasm := run(rt.WasmKind)
	asmjs := run(rt.EmSyncKind)
	if wasm >= asmjs {
		t.Fatalf("wasm (%d) not faster than asm.js (%d)", wasm, asmjs)
	}
}

// TestKillSyncBlockedProcess kills a process that is futex-blocked inside
// a synchronous accept — the worker thread is suspended in Atomics.wait,
// and SIGKILL must still tear it down (worker.terminate()).
func TestKillSyncBlockedProcess(t *testing.T) {
	in := bootBase(t)
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/sync-server", "x-server", rt.EmSyncKind)
	for p, b := range image {
		in.WriteFile(p, b)
	}
	code := -1
	done := false
	in.Main(func() {
		in.Kernel.System("/usr/bin/sync-server", func(pid, c int) { code = c; done = true }, nil, nil)
	})
	listening := false
	in.OnListen(8080, func(int) { listening = true })
	if !in.RunUntil(func() bool { return listening }) {
		t.Fatal("sync server never listened")
	}
	var pid int
	for _, task := range in.Kernel.Tasks() {
		if strings.Contains(task.Path, "sync-server") {
			pid = task.Pid
		}
	}
	in.Main(func() {
		if err := in.Kill(pid, abi.SIGKILL); err != abi.OK {
			t.Errorf("kill: %v", err)
		}
	})
	if !in.RunUntil(func() bool { return done }) {
		t.Fatalf("sync-blocked process survived SIGKILL\n%s", in.Sim.Dump())
	}
	if code != 128+abi.SIGKILL {
		t.Fatalf("exit code %d", code)
	}
}

// TestExperimentHarnessSmoke guards the evaluation harness against rot
// without paying for the full suite on every test run.
func TestExperimentHarnessSmoke(t *testing.T) {
	row := expt.Fig9("ls", "/usr/bin")
	if !(row.NativeNs < row.NodeNs && row.NodeNs < row.BrowsixNs) {
		t.Fatalf("figure 9 ordering violated: %+v", row)
	}
	sc := expt.MeasureSyscalls()
	if !(sc.NativeNs < sc.SyncNs && sc.SyncNs < sc.AsyncNs && sc.AsyncNs < sc.AsyncEmterpNs) {
		t.Fatalf("syscall transport ordering violated: %+v", sc)
	}
	// §6: message passing ~three orders of magnitude over a syscall.
	ratio := float64(sc.AsyncNs) / float64(sc.NativeNs)
	if ratio < 100 || ratio > 10000 {
		t.Fatalf("async/native ratio %.0fx outside the paper's claim", ratio)
	}
}

// TestMemeGenerationShapes asserts the §5.2 generation ratios: Browsix
// generation ~an order of magnitude over the native server, list requests
// the other way around once WAN latency is involved.
func TestMemeGenerationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full meme measurement")
	}
	r := expt.Meme()
	genRatio := float64(r.GenBrowsixNs) / float64(r.GenServerNs)
	if genRatio < 5 || genRatio > 20 {
		t.Fatalf("generation ratio %.1fx, want ~10x (paper: 2s vs 200ms)", genRatio)
	}
	listRatio := float64(r.ListEC2Ns) / float64(r.ListChromeNs)
	if listRatio < 2 || listRatio > 6 {
		t.Fatalf("WAN/browsix list ratio %.1fx, want ~3x", listRatio)
	}
	if r.ListFirefoxNs >= r.ListChromeNs {
		t.Fatal("Firefox list should be faster than Chrome (cheaper messages)")
	}
}

// TestLatexTimingShapes asserts the §5.2 LaTeX ratios.
func TestLatexTimingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full latex measurement")
	}
	r := expt.Latex()
	syncRatio := float64(r.SyncNs) / float64(r.NativeNs)
	if syncRatio < 10 || syncRatio > 100 {
		t.Fatalf("sync/native ratio %.0fx, want order-of-magnitude-ish (paper ~30x)", syncRatio)
	}
	asyncRatio := float64(r.AsyncNs) / float64(r.SyncNs)
	if asyncRatio < 2 || asyncRatio > 8 {
		t.Fatalf("async/sync ratio %.1fx, want ~4x (paper 12s vs 3s)", asyncRatio)
	}
	if r.FilesFetched >= r.TreeFileCount/10 {
		t.Fatalf("lazy loading fetched %d of %d files", r.FilesFetched, r.TreeFileCount)
	}
}
