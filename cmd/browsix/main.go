// browsix boots a Browsix instance from the host command line and either
// runs a single command, executes a script, or drives an interactive-style
// session from stdin — a quick way to poke at the in-browser Unix without
// writing Go.
//
// Usage:
//
//	go run ./cmd/browsix -c 'echo hi | wc -c'     # one command line
//	echo 'ls /usr/bin' | go run ./cmd/browsix     # commands from stdin
//	go run ./cmd/browsix -tex                     # stage + build the LaTeX project
//	go run ./cmd/browsix -ps -c 'cat /etc/motd'   # dump task info after
//	go run ./cmd/browsix snapshot -c 'sha1sum /etc/motd' -o proc.snap
//	                                              # live-checkpoint the command
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	browsix "repro"
	"repro/internal/browser"
	"repro/internal/tex"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		os.Exit(snapshotMain(os.Args[2:]))
	}
	cmd := flag.String("c", "", "command line to run")
	withTex := flag.Bool("tex", false, "stage the LaTeX project (and build it if no -c)")
	withMeme := flag.Bool("meme", false, "stage the meme generator and start its server")
	ps := flag.Bool("ps", false, "print the kernel task table and syscall stats at exit")
	ffx := flag.Bool("firefox", false, "use the Firefox cost profile (default Chrome)")
	flag.Parse()

	cfg := browsix.Config{}
	if *ffx {
		p := browser.Firefox()
		cfg.Browser = &p
	}
	inst := browsix.Boot(cfg)
	browsix.InstallBase(inst)

	if *withTex {
		docTex, docBib := tex.SampleDocument()
		browsix.InstallTexProject(inst, tex.DefaultTree(), browsix.TexSync, docTex, docBib)
		if *cmd == "" {
			*cmd = "/bin/sh -c 'cd /proj && make && ls -l main.pdf'"
		}
	}
	if *withMeme {
		browsix.InstallMeme(inst, 50_000_000)
		inst.StartMemeServer()
		if *cmd == "" {
			*cmd = "curl http://localhost:8888/api/templates"
		}
	}

	exit := 0
	run := func(line string) {
		// Process-handle API: host stdout/stderr are live sinks, so
		// output streams as the guest produces it.
		start := inst.Now()
		p, err := inst.Start(browsix.Spec{
			Argv:   browsix.SplitCmdline(line),
			Stdout: os.Stdout,
			Stderr: os.Stderr,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "browsix: %v\n", err)
			exit = 127
			return
		}
		code, werr := p.Wait()
		elapsed := float64(inst.Now()-start) / 1e6
		if werr != nil {
			fmt.Fprintf(os.Stderr, "browsix: %v\n", werr)
			exit = 1
			return
		}
		if code != 0 {
			fmt.Fprintf(os.Stderr, "[exit %d, %.2f virtual ms]\n", code, elapsed)
			exit = code
		} else {
			fmt.Fprintf(os.Stderr, "[ok, %.2f virtual ms]\n", elapsed)
		}
	}

	switch {
	case *cmd != "":
		run(*cmd)
	default:
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			run(line)
		}
	}

	if *ps {
		fmt.Fprintln(os.Stderr, "--- kernel state ---")
		for _, t := range inst.Kernel.Tasks() {
			fmt.Fprintf(os.Stderr, "pid %3d %s ppid %3d %s\n", t.Pid, t.StateName(), t.ParentPid, t.Path)
		}
		fmt.Fprintf(os.Stderr, "syscalls: %d async, %d sync (%d via ring, %d batched), %d signals\n",
			inst.Kernel.AsyncSyscalls.Load(), inst.Kernel.SyncSyscalls.Load(),
			inst.Kernel.RingSyscalls.Load(), inst.Kernel.RingBatchedCalls.Load(), inst.Kernel.SignalsDelivered.Load())
		fmt.Fprintf(os.Stderr, "mounts: %v\n", inst.VFS.Mounts())
	}
	os.Exit(exit)
}
