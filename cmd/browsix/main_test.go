package main

import (
	"strings"
	"testing"

	browsix "repro"
)

// Smoke test for the CLI's core path: boot → InstallBase → RunCommand,
// exactly what run() does per input line, so `go test` exercises the
// binary's round trip without spawning a process.
func TestCLIRoundTrip(t *testing.T) {
	inst := browsix.Boot(browsix.Config{})
	browsix.InstallBase(inst)

	res := inst.RunCommand("echo hi | wc -c")
	if res.Code != 0 {
		t.Fatalf("pipeline exited %d: %s", res.Code, res.Stderr)
	}
	if got := strings.TrimSpace(string(res.Stdout)); got != "3" {
		t.Fatalf("wc -c printed %q, want 3", got)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}

	// A failing command reports its exit code without wedging the
	// instance.
	if res := inst.RunCommand("false"); res.Code != 1 {
		t.Fatalf("false exited %d, want 1", res.Code)
	}
	if res := inst.RunCommand("cat /etc/motd"); res.Code != 0 ||
		!strings.Contains(string(res.Stdout), "Browsix") {
		t.Fatalf("motd: code=%d stdout=%q", res.Code, res.Stdout)
	}
}
