// The `browsix snapshot` subcommand: boot an instance, launch a command,
// and checkpoint it while it runs — iterative pre-copy with a short final
// stop-copy (internal/snapshot) — writing the diagnostics dump (memory
// image, fd table, process template, pre-copy telemetry) to a file.
package main

import (
	"flag"
	"fmt"
	"os"

	browsix "repro"
	"repro/internal/abi"
)

// snapshotMain implements `browsix snapshot [-c cmd] [-o file] [-wasm]`.
func snapshotMain(args []string) int {
	fl := flag.NewFlagSet("browsix snapshot", flag.ExitOnError)
	cmd := fl.String("c", "sha1sum /etc/motd", "command to checkpoint while it runs")
	out := fl.String("o", "browsix.snap", "output file for the dump")
	wasm := fl.Bool("wasm", true, "restage coreutils on the wasm (sync) runtime so the guest has a dumpable heap")
	fl.Parse(args)

	inst := browsix.Boot(browsix.Config{EnableSnapshots: true})
	browsix.InstallBase(inst)
	if *wasm {
		browsix.InstallWasmCoreutils(inst)
	}

	p, err := inst.Start(browsix.Spec{
		Argv:   browsix.SplitCmdline(*cmd),
		Stdout: os.Stdout,
		Stderr: os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "browsix snapshot: %v\n", err)
		return 127
	}
	// Let the guest boot far enough to register its heap (or exit), then
	// checkpoint it live: the scheduler keeps running guest events
	// between pre-copy rounds.
	inst.RunUntil(func() bool {
		tk := inst.Kernel.Task(p.Pid)
		return tk == nil || tk.StateName() == "Z" || tk.HasHeap()
	})
	dump, errno := inst.CheckpointLive(p.Pid)
	if errno != abi.OK {
		fmt.Fprintf(os.Stderr, "browsix snapshot: checkpoint pid %d: errno %d\n", p.Pid, errno)
		return 1
	}
	if werr := os.WriteFile(*out, dump.Encode(), 0o644); werr != nil {
		fmt.Fprintf(os.Stderr, "browsix snapshot: %v\n", werr)
		return 1
	}
	code, _ := p.Wait()
	fmt.Fprintf(os.Stderr,
		"snapshot: pid %d (%s) -> %s: %d heap bytes, %d fds, %d rounds pre-copy (%d pages live, %d final), pause %dns virtual; guest exited %d\n",
		dump.Pid, dump.Path, *out, dump.HeapLen, len(dump.Fds),
		dump.Rounds, dump.PrecopyPages, dump.FinalPages, dump.PauseNs, code)
	return 0
}
