// experiments regenerates every table and figure from the paper's
// evaluation (§5) plus the §6 microbenchmarks and the §3.6 ablation,
// printing paper-reported values next to this reproduction's measured
// virtual times.
//
// Usage:
//
//	go run ./cmd/experiments            # everything
//	go run ./cmd/experiments -only fig9 # one experiment
//	                (fig2|fig3|fig9|latex|meme|syscalls|lazy|table1)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/expt"
)

func main() {
	only := flag.String("only", "", "run a single experiment")
	flag.Parse()

	run := func(name string, fn func()) {
		if *only != "" && *only != name {
			return
		}
		fn()
		fmt.Println()
	}

	fmt.Println("Browsix reproduction — evaluation harness")
	fmt.Println(strings.Repeat("=", 64))
	fmt.Println()
	run("fig2", figure2)
	run("fig3", figure3)
	run("table1", table1)
	run("fig9", figure9)
	run("latex", latexEditor)
	run("meme", memeGenerator)
	run("syscalls", syscalls)
	run("lazy", lazyAblation)
}

// figure2 regenerates the component-size table for this codebase.
func figure2() {
	fmt.Println("Figure 2: component sizes (paper: Browsix in TypeScript/JS; here: Go)")
	components := []struct{ name, dir string }{
		{"Kernel", "internal/core"},
		{"BrowserFS (fs layer)", "internal/fs"},
		{"Shared syscall module", "internal/abi"},
		{"Browser substrate", "internal/browser"},
		{"Scheduler substrate", "internal/sched"},
		{"Runtime integrations", "internal/rt"},
		{"POSIX program layer", "internal/posix"},
		{"Shell (dash)", "internal/shell"},
		{"Coreutils", "internal/coreutils"},
		{"make/tex/meme workloads", "internal/mk internal/tex internal/meme"},
		{"HTTP + network sim", "internal/httpx internal/netsim"},
		{"Public API + harness", ". internal/expt"},
	}
	root := repoRoot()
	total := 0
	fmt.Printf("  %-28s %10s\n", "Component", "LoC")
	for _, c := range components {
		n := 0
		for _, dir := range strings.Fields(c.dir) {
			n += countLoC(filepath.Join(root, dir))
		}
		total += n
		fmt.Printf("  %-28s %10d\n", c.name, n)
	}
	fmt.Printf("  %-28s %10d\n", "TOTAL (non-test)", total)
	fmt.Println("  (paper total: 8,126 LoC of TypeScript/JavaScript)")
}

func repoRoot() string {
	if _, err := os.Stat("go.mod"); err == nil {
		return "."
	}
	return "/root/repo"
}

// countLoC counts non-test Go lines in a directory (top level only).
func countLoC(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		n += strings.Count(string(b), "\n")
	}
	return n
}

// figure3 prints the implemented system-call table.
func figure3() {
	fmt.Println("Figure 3: system calls implemented by the kernel")
	table := core.SyscallTable()
	classes := make([]string, 0, len(table))
	for c := range table {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	total := 0
	for _, c := range classes {
		fmt.Printf("  %-20s %s\n", c, strings.Join(table[c], ", "))
		total += len(table[c])
	}
	fmt.Printf("  (%d syscalls; fork is supported only on the Emscripten/async runtime)\n", total)
}

// table1 prints the feature-comparison matrix.
func table1() {
	fmt.Println("Table 1: feature comparison (3 = supported, multi-process)")
	features := []string{"Filesystem", "Socket clients", "Socket servers", "Processes", "Pipes", "Signals"}
	rows := []struct {
		name  string
		marks []string
	}{
		{"BROWSIX", []string{"3", "3", "3", "3", "3", "3"}},
		{"Doppio", []string{"†", "†", "", "", "", ""}},
		{"WebAssembly", []string{"", "", "", "", "", ""}},
		{"Emscripten (C/C++)", []string{"†", "†", "", "", "†", ""}},
		{"GopherJS (Go)", []string{"", "", "", "", "", ""}},
		{"BROWSIX + Emscripten", []string{"3", "3", "3", "3", "3", "3"}},
		{"BROWSIX + GopherJS", []string{"3", "3", "3", "3", "3", "3"}},
	}
	fmt.Printf("  %-22s", "")
	for _, f := range features {
		fmt.Printf("%-16s", f)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("  %-22s", r.name)
		for _, m := range r.marks {
			fmt.Printf("%-16s", m)
		}
		fmt.Println()
	}
	fmt.Println("  († = single-process only)")
	fmt.Println("  Browsix rows verified by the integration suite: multi-process FS,")
	fmt.Println("  client+server sockets, processes, pipes and signals all exercised.")
}

// figure9 regenerates the utilities table.
func figure9() {
	fmt.Println("Figure 9: utilities under Native / Node.js / Browsix (Chrome)")
	fmt.Printf("  %-24s %12s %12s %12s\n", "Command", "Native", "Node.js", "BROWSIX")
	paper := map[string][3]float64{
		"sha1sum /usr/bin/node": {2, 67, 189},
		"ls /usr/bin":           {1, 44, 108},
	}
	for _, row := range expt.Fig9All() {
		fmt.Printf("  %-24s %9.3fms %9.3fms %9.3fms\n",
			row.Command, expt.Ms(row.NativeNs), expt.Ms(row.NodeNs), expt.Ms(row.BrowsixNs))
		if p, ok := paper[row.Command]; ok {
			fmt.Printf("  %-24s %9.0fms %9.0fms %9.0fms\n", "  (paper)", p[0], p[1], p[2])
		}
		fmt.Printf("  %-24s %12s %11.1fx %11.1fx\n", "  (slowdown vs native)", "",
			float64(row.NodeNs)/float64(row.NativeNs), float64(row.BrowsixNs)/float64(row.NativeNs))
	}
}

// latexEditor regenerates the §5.2 LaTeX timings.
func latexEditor() {
	fmt.Println("LaTeX editor (§5.2): one-page paper with bibliography")
	r := expt.Latex()
	fmt.Printf("  native pdflatex:            %8.1f ms   (paper: ~100 ms)\n", expt.Ms(r.NativeNs))
	fmt.Printf("  Browsix build, sync calls:  %8.1f ms   (paper: just under 3,000 ms)\n", expt.Ms(r.SyncNs))
	fmt.Printf("  Browsix build, async calls: %8.1f ms   (paper: ~12,000 ms)\n", expt.Ms(r.AsyncNs))
	fmt.Printf("  lazy fetches: %d files / %.0f KB of a %d-file distribution\n",
		r.FilesFetched, float64(r.BytesFetched)/1024, r.TreeFileCount)
}

// memeGenerator regenerates the §5.2 meme timings.
func memeGenerator() {
	fmt.Println("Meme generator (§5.2)")
	r := expt.Meme()
	fmt.Printf("  list, native local server:  %8.2f ms   (paper: 1.7 ms)\n", expt.Ms(r.ListLocalServerNs))
	fmt.Printf("  list, Browsix (Chrome):     %8.2f ms   (paper: 9 ms)\n", expt.Ms(r.ListChromeNs))
	fmt.Printf("  list, Browsix (Firefox):    %8.2f ms   (paper: 6 ms)\n", expt.Ms(r.ListFirefoxNs))
	fmt.Printf("  list, remote server (WAN):  %8.2f ms   (paper: ~3x slower than Browsix)\n", expt.Ms(r.ListEC2Ns))
	fmt.Printf("     -> remote/Browsix ratio: %8.1fx\n", float64(r.ListEC2Ns)/float64(r.ListChromeNs))
	fmt.Printf("  generate, native server:    %8.1f ms   (paper: ~200 ms)\n", expt.Ms(r.GenServerNs))
	fmt.Printf("  generate, Browsix GopherJS: %8.1f ms   (paper: ~2,000 ms; missing int64)\n", expt.Ms(r.GenBrowsixNs))
}

// syscalls regenerates the §3.2/§6 transport microbenchmarks.
func syscalls() {
	fmt.Println("Syscall transports (§3.2, §6): per-call cost")
	r := expt.MeasureSyscalls()
	fmt.Printf("  native syscall:             %8.2f µs\n", float64(r.NativeNs)/1000)
	fmt.Printf("  Browsix sync (SAB+Atomics): %8.2f µs\n", float64(r.SyncNs)/1000)
	fmt.Printf("  Browsix async (postMessage):%8.2f µs\n", float64(r.AsyncNs)/1000)
	fmt.Printf("  Browsix async (Emterpreter):%8.2f µs\n", float64(r.AsyncEmterpNs)/1000)
	fmt.Printf("  async/native ratio:         %8.0fx  (paper: ~three orders of magnitude)\n",
		float64(r.AsyncNs)/float64(r.NativeNs))
	fmt.Printf("  async/sync ratio:           %8.1fx  (sync transport advantage)\n",
		float64(r.AsyncNs)/float64(r.SyncNs))
}

// lazyAblation regenerates the §3.6 design-choice ablation.
func lazyAblation() {
	fmt.Println("Lazy overlay ablation (§3.6): Browsix lazy vs original eager underlay")
	r := expt.MeasureLazyAblation()
	fmt.Printf("  lazy : build %8.1f ms, %5d fetches, %8.0f KB\n",
		expt.Ms(r.LazyNs), r.LazyFetches, float64(r.LazyBytes)/1024)
	fmt.Printf("  eager: build %8.1f ms, %5d fetches, %8.0f KB\n",
		expt.Ms(r.EagerNs), r.EagerFetches, float64(r.EagerBytes)/1024)
	fmt.Printf("  lazy speedup on time-to-first-build: %.1fx, data saved: %.1fx\n",
		float64(r.EagerNs)/float64(r.LazyNs), float64(r.EagerBytes)/float64(r.LazyBytes))
}
