package browsix_test

import (
	"bytes"
	"fmt"
	"testing"

	browsix "repro"
	"repro/internal/abi"
)

// Differential proof for the checkpoint/fork subsystem: snapshots change
// nothing observable. Every transport (async Node runtimes, scalar sync,
// ring sync) produces byte-identical stdout/stderr/exit codes with
// snapshots on and off, repeated snapshot-on runs land on identical
// virtual clocks, and a fleet of jobs cloned from one shared registry
// shows zero cross-child page bleed with every COW pin returned.

func snapPayload() []byte {
	payload := make([]byte, 96*1024)
	for i := range payload {
		payload[i] = byte(i*13 + i>>7)
	}
	return payload
}

var snapCmds = []string{
	"echo fork me gently",
	"cat /data/fruit.txt | grep apple | sort | wc -l",
	"wc -c /big.bin",
	"sha1sum /big.bin",
	"ls /usr/bin",
}

func TestSnapshotDifferential(t *testing.T) {
	payload := snapPayload()
	type result struct {
		outs     []string
		clock    int64
		clones   int64
		captures int64
	}
	run := func(name string, sync, disableRing, snaps bool) result {
		in := browsix.Boot(browsix.Config{EnableSnapshots: snaps})
		browsix.InstallBase(in)
		in.Kernel.DisableRing = disableRing
		if sync {
			installWasmCoreutils(t, in)
		}
		in.WriteFile("/data/fruit.txt", []byte("banana\napple\ncherry\napple pie\n"))
		in.WriteFile("/big.bin", payload)
		var r result
		// Two passes: the first pass's boots capture images, the second
		// pass's boots must clone them — and nothing may differ.
		for pass := 0; pass < 2; pass++ {
			for _, cmd := range snapCmds {
				res := in.RunCommand(cmd)
				if res.Code != 0 {
					t.Fatalf("%s pass %d: %q exited %d: %s", name, pass, cmd, res.Code, res.Stderr)
				}
				r.outs = append(r.outs, string(res.Stdout)+"\x00"+string(res.Stderr))
			}
		}
		r.clock = in.Now()
		r.clones = in.Kernel.CloneBoots.Load()
		r.captures = in.Kernel.SnapshotCaptures.Load()
		return r
	}

	variants := []struct {
		name              string
		sync, disableRing bool
	}{
		{"async", false, false},
		{"sync-scalar", true, true},
		{"sync-ring", true, false},
	}
	for _, v := range variants {
		off := run(v.name+"/off", v.sync, v.disableRing, false)
		on := run(v.name+"/on", v.sync, v.disableRing, true)
		on2 := run(v.name+"/on2", v.sync, v.disableRing, true)
		for i, o := range off.outs {
			if o != on.outs[i] {
				t.Errorf("%s: %q diverged with snapshots on:\noff: %q\non:  %q",
					v.name, snapCmds[i%len(snapCmds)], o, on.outs[i])
			}
		}
		if on.captures == 0 {
			t.Errorf("%s: no snapshot captured", v.name)
		}
		if on.clones == 0 {
			t.Errorf("%s: second pass booted no clones", v.name)
		}
		if off.clones != 0 || off.captures != 0 {
			t.Errorf("%s: snapshots-off instance touched the subsystem (%d clones, %d captures)",
				v.name, off.clones, off.captures)
		}
		// Determinism: identical snapshot-on runs land on one clock.
		if on.clock != on2.clock {
			t.Errorf("%s: snapshot-on clock not deterministic: %d vs %d", v.name, on.clock, on2.clock)
		}
		// Every clone returned its COW pins: images are back to base.
		if err := run0balance(v.name, v.sync, v.disableRing, t); err != nil {
			t.Error(err)
		}
	}
}

// run0balance reruns a snapshot-on workload and checks pin balance after
// every process exited.
func run0balance(name string, sync, disableRing bool, t *testing.T) error {
	in := browsix.Boot(browsix.Config{EnableSnapshots: true})
	browsix.InstallBase(in)
	in.Kernel.DisableRing = disableRing
	if sync {
		installWasmCoreutils(t, in)
	}
	in.WriteFile("/big.bin", snapPayload())
	for pass := 0; pass < 2; pass++ {
		if res := in.RunCommand("wc -c /big.bin"); res.Code != 0 {
			return fmt.Errorf("%s balance run exited %d", name, res.Code)
		}
	}
	if err := in.Snapshots().VerifyBalanced(); err != nil {
		return fmt.Errorf("%s: %v", name, err)
	}
	return nil
}

// TestForkSpawnRatioGuard pins the subsystem's reason to exist: booting a
// Node-runtime utility from its snapshot must be at least 5x cheaper in
// virtual time than a cold boot (the paper-calibrated init is ~100ms of
// worker spawn + artifact eval + runtime init; a clone pays the worker
// spawn, a stub eval, and image restore). Virtual time is deterministic,
// so this is an exact guard, not a flaky benchmark.
func TestForkSpawnRatioGuard(t *testing.T) {
	elapsed := func(snaps bool) int64 {
		in := browsix.Boot(browsix.Config{EnableSnapshots: snaps})
		browsix.InstallBase(in)
		// First run warms caches (and captures when snapshots are on);
		// the second run measures a cold boot vs a clone boot on equal
		// cache state.
		in.RunCommand("echo warm")
		res := in.RunCommand("echo measured")
		if res.Code != 0 || string(res.Stdout) != "measured\n" {
			t.Fatalf("echo (snaps=%v) exited %d with %q", snaps, res.Code, res.Stdout)
		}
		return res.Elapsed
	}
	cold := elapsed(false)
	forked := elapsed(true)
	if cold < forked*5 {
		t.Fatalf("forked spawn not >=5x cheaper: cold %dns vs forked %dns (%.1fx)",
			cold, forked, float64(cold)/float64(forked))
	}
	t.Logf("spawn-to-exit: cold %dns, forked %dns (%.1fx)", cold, forked, float64(cold)/float64(forked))
}

// stageWasmFleet stages the base image with sync-runtime coreutils
// (fleet Setup variant: no testing.T on the worker goroutine).
func stageWasmFleet(in *browsix.Instance) {
	browsix.InstallBase(in)
	browsix.InstallWasmCoreutils(in)
}

// TestFleetSharedSnapshotNoBleed runs N jobs cloned from one shared,
// sealed registry — sync runtimes, so every clone COWs real heap pages
// out of the shared arena concurrently — and checks that outputs are
// exactly what each job's distinct input demands (no cross-child page
// bleed), that virtual clocks are identical across worker counts, and
// that the registry's COW pins balance fleet-wide.
func TestFleetSharedSnapshotNoBleed(t *testing.T) {
	const jobs = 8
	mkJobs := func() []browsix.Job {
		out := make([]browsix.Job, jobs)
		for i := range out {
			i := i
			data := bytes.Repeat([]byte{byte('a' + i)}, 1000+100*i)
			out[i] = browsix.Job{
				Name:  fmt.Sprintf("job%d", i),
				Setup: func(in *browsix.Instance) { stageWasmFleet(in); in.WriteFile("/in.bin", data) },
				Spec:  browsix.Spec{Argv: []string{"/usr/bin/wc", "-c", "/in.bin"}},
			}
		}
		return out
	}
	warm := &browsix.SnapshotWarmup{
		Setup: stageWasmFleet,
		Cmds:  []string{"wc -c /etc/motd"},
	}
	run := func(workers int) ([]browsix.JobResult, browsix.FleetStats) {
		fl := &browsix.Fleet{Workers: workers, SnapshotWarmup: warm}
		return fl.Run(mkJobs())
	}
	serial, sstats := run(1)
	parallel, pstats := run(4)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errs: serial %v parallel %v", i, serial[i].Err, parallel[i].Err)
		}
		want := fmt.Sprintf("%8d /in.bin\n", 1000+100*i)
		if got := string(serial[i].Stdout); got != want {
			t.Errorf("job %d serial stdout %q, want %q", i, got, want)
		}
		if !bytes.Equal(serial[i].Stdout, parallel[i].Stdout) ||
			!bytes.Equal(serial[i].Stderr, parallel[i].Stderr) ||
			serial[i].Code != parallel[i].Code {
			t.Errorf("job %d diverged between 1 and 4 workers", i)
		}
		if serial[i].VirtualNs != parallel[i].VirtualNs {
			t.Errorf("job %d virtual clock diverged: %d vs %d",
				i, serial[i].VirtualNs, parallel[i].VirtualNs)
		}
	}
	for _, st := range []browsix.FleetStats{sstats, pstats} {
		if st.CloneBoots == 0 {
			t.Error("fleet booted no clones from the shared registry")
		}
		if st.SnapshotLeak != nil {
			t.Errorf("COW pins leaked: %v", st.SnapshotLeak)
		}
		if st.StagedSlotsLeaked != 0 {
			t.Errorf("staged slots leaked: %d", st.StagedSlotsLeaked)
		}
	}
	if sstats.CloneBoots != pstats.CloneBoots {
		t.Errorf("clone count diverged across worker counts: %d vs %d",
			sstats.CloneBoots, pstats.CloneBoots)
	}
}

// TestCheckpointLiveDump checkpoints a running sync-runtime guest:
// iterative pre-copy with a short final stop-copy, dumped as diagnostics.
func TestCheckpointLiveDump(t *testing.T) {
	in := browsix.Boot(browsix.Config{EnableSnapshots: true})
	browsix.InstallBase(in)
	installWasmCoreutils(t, in)
	in.WriteFile("/big.bin", snapPayload())
	var outBuf bytes.Buffer
	p, err := in.Start(browsix.Spec{
		Argv:   []string{"/usr/bin/sha1sum", "/big.bin"},
		Stdout: &outBuf,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	// Let the guest boot far enough to register its heap, then
	// checkpoint it mid-run.
	in.RunUntil(func() bool {
		tk := in.Kernel.Task(p.Pid)
		return tk == nil || tk.StateName() == "Z" || tk.HasHeap()
	})
	dump, errno := in.CheckpointLive(p.Pid)
	if errno != abi.OK {
		t.Fatalf("CheckpointLive: %v", errno)
	}
	if dump.HeapLen == 0 || len(dump.Mem) != dump.HeapLen {
		t.Fatalf("dump heap %d bytes, mem %d", dump.HeapLen, len(dump.Mem))
	}
	if dump.Rounds < 1 || dump.FinalPages == 0 {
		t.Errorf("pre-copy telemetry empty: %+v rounds, %d final", dump.Rounds, dump.FinalPages)
	}
	// Bounded pause: the final stop-copy must be well under a full-heap
	// stop-the-world copy.
	full := int64(float64(dump.HeapLen) * 0.15)
	if dump.PauseNs <= 0 || dump.PauseNs >= full {
		t.Errorf("pause %dns not bounded (full copy ~%dns)", dump.PauseNs, full)
	}
	enc := dump.Encode()
	if !bytes.Contains(enc, []byte("pid:")) || !bytes.Contains(enc, []byte("precopy:")) {
		t.Errorf("dump encoding missing fields:\n%s", enc[:min(len(enc), 400)])
	}
	if _, werr := p.Wait(); werr != nil {
		t.Fatalf("wait: %v", werr)
	}
	// Heap-less guest (async runtime): fd/env/cwd-only dump.
	p2, err := in.Start(browsix.Spec{Argv: []string{"/usr/bin/echo", "hi"}})
	if err != nil {
		t.Fatalf("start echo: %v", err)
	}
	dump2, errno := in.CheckpointLive(p2.Pid)
	if errno != abi.OK {
		t.Fatalf("CheckpointLive(echo): %v", errno)
	}
	if dump2.Mem != nil {
		t.Errorf("async-runtime dump has %d heap bytes, want none", len(dump2.Mem))
	}
	p2.Wait()
}
