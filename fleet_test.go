package browsix_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"

	browsix "repro"
	"repro/internal/meme"
	"repro/internal/tex"
)

// ---------------------------------------------------------------------------
// Fleet workloads: one job per case study (§2, §5.1.1, §5.1.2) plus a
// shell pipeline — the mixed batch the fleet scheduler is measured on.
// ---------------------------------------------------------------------------

func pipelineJob() browsix.Job {
	return browsix.Job{
		Name:  "pipeline",
		Setup: browsix.InstallBase,
		Spec: browsix.Spec{Argv: []string{"/bin/sh", "-c",
			"cat /etc/motd | wc -c; ls /usr/bin | head -n 3; echo fleet | cat"}},
	}
}

func latexJob() browsix.Job {
	return browsix.Job{
		Name: "latex",
		Setup: func(in *browsix.Instance) {
			browsix.InstallBase(in)
			docTex, docBib := tex.SampleDocument()
			browsix.InstallTexProject(in, tex.SmallTree(), browsix.TexSync, docTex, docBib)
		},
		Run: func(in *browsix.Instance) browsix.JobOutput {
			code, log := in.BuildPDF()
			return browsix.JobOutput{Code: code, Stdout: []byte(log)}
		},
	}
}

func memeJob() browsix.Job {
	return browsix.Job{
		Name: "meme",
		Setup: func(in *browsix.Instance) {
			browsix.InstallBase(in)
			browsix.InstallMeme(in, 50_000_000)
		},
		Run: func(in *browsix.Instance) browsix.JobOutput {
			pid := in.StartMemeServer()
			body, _ := json.Marshal(meme.GenRequest{
				Template: "doge", Top: "MUCH FLEET", Bottom: "VERY PARALLEL"})
			resp := in.GenerateMeme("browsix", body)
			code := 1
			if resp.Status == 200 {
				code = 0
			}
			// Stop the server so it exits and returns its page leases
			// (frozen arena slots would otherwise stay charged).
			in.Kill(pid, 9)
			in.Run()
			return browsix.JobOutput{Code: code, Stdout: resp.Body}
		},
	}
}

func terminalJob() browsix.Job {
	return browsix.Job{
		Name:  "terminal",
		Setup: browsix.InstallBase,
		Run: func(in *browsix.Instance) browsix.JobOutput {
			term := in.NewTerminal()
			out := term.Exec("echo interactive | wc -c")
			out += term.Exec("ls / | head -n 4")
			code := term.Close()
			return browsix.JobOutput{Code: code, Stdout: []byte(out)}
		},
	}
}

func fleetJobs() []browsix.Job {
	return []browsix.Job{pipelineJob(), latexJob(), memeJob(), terminalJob()}
}

// runJobPrivate executes one job the pre-fleet way: a plain Boot with a
// private page pool, everything on the calling goroutine. This is the
// serial baseline the differential compares the fleet against.
func runJobPrivate(job browsix.Job) browsix.JobResult {
	res := browsix.JobResult{Name: job.Name}
	in := browsix.Boot(job.Config)
	if job.Setup != nil {
		job.Setup(in)
	}
	if job.Run != nil {
		res.JobOutput = job.Run(in)
	} else {
		spec := job.Spec
		var outBuf, errBuf bytes.Buffer
		spec.Stdout, spec.Stderr = &outBuf, &errBuf
		p, err := in.Start(spec)
		if err != nil {
			res.Err, res.Code = err, 127
		} else {
			code, werr := p.Wait()
			res.Err, res.Code = werr, code
			res.Stdout, res.Stderr = outBuf.Bytes(), errBuf.Bytes()
		}
	}
	res.VirtualNs = in.Now()
	return res
}

// ---------------------------------------------------------------------------
// Determinism differential: serial private-pool execution vs the fleet
// at N=1, N=4, and N=GOMAXPROCS. Byte-identical stdout/stderr, equal
// exit codes, equal virtual clocks — parallelism must change wall-clock
// time and nothing else.
// ---------------------------------------------------------------------------

func TestFleetSerialParallelIdentical(t *testing.T) {
	jobs := fleetJobs()
	base := make([]browsix.JobResult, len(jobs))
	for i, job := range jobs {
		base[i] = runJobPrivate(job)
		if base[i].Err != nil {
			t.Fatalf("serial %s: %v", job.Name, base[i].Err)
		}
		if base[i].Code != 0 {
			t.Fatalf("serial %s: exit %d\n%s%s", job.Name, base[i].Code, base[i].Stdout, base[i].Stderr)
		}
	}

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, n := range workerCounts {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			fl := &browsix.Fleet{Workers: n}
			results, stats := fl.Run(fleetJobs())
			for i, res := range results {
				want := base[i]
				if res.Err != nil {
					t.Fatalf("%s: %v", res.Name, res.Err)
				}
				if res.Index != i || res.Name != jobs[i].Name {
					t.Fatalf("result %d misordered: index=%d name=%s", i, res.Index, res.Name)
				}
				if res.Code != want.Code {
					t.Errorf("%s: exit %d, serial %d", res.Name, res.Code, want.Code)
				}
				if !bytes.Equal(res.Stdout, want.Stdout) {
					t.Errorf("%s: stdout diverged from serial\nfleet:  %q\nserial: %q",
						res.Name, res.Stdout, want.Stdout)
				}
				if !bytes.Equal(res.Stderr, want.Stderr) {
					t.Errorf("%s: stderr diverged from serial\nfleet:  %q\nserial: %q",
						res.Name, res.Stderr, want.Stderr)
				}
				if res.VirtualNs != want.VirtualNs {
					t.Errorf("%s: virtual clock %dns, serial %dns — timing is not bit-identical",
						res.Name, res.VirtualNs, want.VirtualNs)
				}
			}
			if stats.Jobs != len(jobs) {
				t.Errorf("stats.Jobs = %d, want %d", stats.Jobs, len(jobs))
			}
			// Every lease granted across the fleet came back: no shard
			// leaked arena slots into a neighbour's quota. This covers
			// both directions — read grants and write-staging leases are
			// the same ledger.
			if stats.LeaseGrants != stats.LeaseReturns {
				t.Errorf("leases leaked: %d granted, %d returned", stats.LeaseGrants, stats.LeaseReturns)
			}
			// And no instance quiesced with write-staging slots still
			// leased out (close/dup2/exec/exit must return them all).
			if stats.StagedSlotsLeaked != 0 {
				t.Errorf("%d write-staging slots leaked across the fleet", stats.StagedSlotsLeaked)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Live counters: CacheStats and the kernel's atomic counters must be
// readable from the host while instances run on worker threads (the
// torn-read audit's test).
// ---------------------------------------------------------------------------

func TestFleetCountersReadableWhileRunning(t *testing.T) {
	var mu sync.Mutex
	var live []*browsix.Instance
	fl := &browsix.Fleet{
		Workers: 2,
		OnBoot: func(_ int, in *browsix.Instance) {
			mu.Lock()
			live = append(live, in)
			mu.Unlock()
		},
	}
	done := make(chan struct{})
	var results []browsix.JobResult
	var stats browsix.FleetStats
	go func() {
		defer close(done)
		results, stats = fl.Run(fleetJobs())
	}()

	// Poll every live instance's counters until the fleet finishes. The
	// values are loose snapshots; the race detector is the referee here —
	// a non-atomic counter would be flagged, a torn read would be
	// possible without one.
	polls := 0
	for {
		select {
		case <-done:
			if polls == 0 {
				t.Log("fleet finished before any poll (fast host) — counters still exercised once below")
			}
			mu.Lock()
			for _, in := range live {
				cs := in.VFS.CacheStats()
				if cs.DentryMisses < 0 || cs.PageBytes < 0 || cs.DirtyBytes < 0 {
					t.Errorf("nonsense cache stats after quiesce: %+v", cs)
				}
			}
			mu.Unlock()
			for _, res := range results {
				if res.Err != nil || res.Code != 0 {
					t.Fatalf("%s: err=%v code=%d", res.Name, res.Err, res.Code)
				}
			}
			if stats.SyncSyscalls+stats.AsyncSyscalls == 0 {
				t.Error("no syscalls aggregated across the fleet")
			}
			if stats.LeaseGrants != stats.LeaseReturns {
				t.Errorf("leases leaked: %d granted, %d returned", stats.LeaseGrants, stats.LeaseReturns)
			}
			return
		default:
		}
		mu.Lock()
		for _, in := range live {
			cs := in.VFS.CacheStats()
			_ = cs.DentryHits + cs.PageHits + cs.DirtyBytes + cs.GrantedPages
			_ = int(cs.PinnedPages) + cs.DentryEntries
			k := in.Kernel
			_ = k.AsyncSyscalls.Load() + k.SyncSyscalls.Load() + k.SignalsDelivered.Load()
			_ = k.RingSyscalls.Load() + k.RingBatchedCalls.Load() + k.RingNotifies.Load()
			_ = k.FSBatchedCalls.Load() + k.ReadCopiedBytes.Load() + k.GrantedBytes.Load()
			_ = k.LeaseGrants.Load() + k.LeaseReturns.Load()
			_ = k.WriteCopiedBytes.Load() + k.WriteGrantedBytes.Load() + k.BatchedGrantReads.Load()
			polls++
		}
		mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Scaling: with >=4 host cores, 4 workers must beat 1 worker by >=2x on
// the same 4-job batch (the CI sanity guard; near-linear is typical).
// ---------------------------------------------------------------------------

func TestFleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short mode")
	}
	if n := runtime.GOMAXPROCS(0); n < 4 {
		t.Skipf("need >=4 host cores for the scaling guard, have GOMAXPROCS=%d", n)
	}
	batch := func() []browsix.Job {
		return []browsix.Job{latexJob(), latexJob(), latexJob(), latexJob()}
	}
	serialRes, serial := (&browsix.Fleet{Workers: 1}).Run(batch())
	parallelRes, parallel := (&browsix.Fleet{Workers: 4}).Run(batch())
	for i := range serialRes {
		if serialRes[i].Code != 0 || parallelRes[i].Code != 0 {
			t.Fatalf("job %d: serial code=%d parallel code=%d", i, serialRes[i].Code, parallelRes[i].Code)
		}
		if serialRes[i].VirtualNs != parallelRes[i].VirtualNs {
			t.Fatalf("job %d virtual clock diverged: %d vs %d", i,
				serialRes[i].VirtualNs, parallelRes[i].VirtualNs)
		}
	}
	speedup := float64(serial.WallNs) / float64(parallel.WallNs)
	t.Logf("serial %.0fms, parallel %.0fms: %.2fx speedup (%.1f vs %.1f sessions/sec)",
		float64(serial.WallNs)/1e6, float64(parallel.WallNs)/1e6, speedup,
		serial.SessionsPerSec, parallel.SessionsPerSec)
	if speedup < 2 {
		t.Errorf("4 workers only %.2fx faster than 1 on 4 jobs; want >=2x", speedup)
	}
}

// ---------------------------------------------------------------------------
// BenchmarkFleet: sessions/sec over the mixed case-study batch at full
// GOMAXPROCS (the fleet's headline number; CI smokes it at -benchtime=1x).
// ---------------------------------------------------------------------------

func BenchmarkFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, stats := browsix.RunFleet(fleetJobs())
		for _, res := range results {
			if res.Err != nil || res.Code != 0 {
				b.Fatalf("%s: err=%v code=%d", res.Name, res.Err, res.Code)
			}
		}
		b.ReportMetric(stats.SessionsPerSec, "sessions/sec")
	}
}
