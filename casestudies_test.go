package browsix_test

import (
	"encoding/json"
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/meme"
	"repro/internal/tex"
)

// ---------------------------------------------------------------------------
// LaTeX editor (§2).
// ---------------------------------------------------------------------------

func bootTex(t testing.TB, mode browsix.TexMode) *browsix.Instance {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	docTex, docBib := tex.SampleDocument()
	browsix.InstallTexProject(in, tex.SmallTree(), mode, docTex, docBib)
	return in
}

func TestLatexEditorEndToEnd(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	docTex, docBib := tex.SampleDocument()
	httpfs := browsix.InstallTexProject(in, tex.SmallTree(), browsix.TexSync, docTex, docBib)

	code, log := in.BuildPDF()
	if code != 0 {
		t.Fatalf("make failed (%d):\n%s", code, log)
	}
	// The full dance ran: pdflatex for .aux, bibtex, two more pdflatex.
	if got := strings.Count(log, "pdflatex main.tex"); got != 3 {
		t.Fatalf("pdflatex ran %d times, want 3\n%s", got, log)
	}
	if !strings.Contains(log, "bibtex main") {
		t.Fatalf("bibtex did not run:\n%s", log)
	}
	pdf, err := in.ReadFile("/proj/main.pdf")
	if err != abi.OK || !strings.HasPrefix(string(pdf), "%PDF-1.5") {
		t.Fatalf("main.pdf: err=%v head=%q", err, head(pdf))
	}
	// The bibliography made it into the final PDF.
	if !strings.Contains(string(pdf), "Powers, Bobby") {
		t.Fatal("resolved citation missing from PDF")
	}
	// .aux/.bbl/.log artifacts exist.
	for _, f := range []string{"/proj/main.aux", "/proj/main.bbl", "/proj/main.log", "/proj/main.blg"} {
		if _, err := in.Stat(f); err != abi.OK {
			t.Errorf("%s missing (%v)", f, err)
		}
	}
	// Lazy loading: only the document's dependency cone was fetched,
	// not the whole distribution.
	total := tex.SmallTree()
	fetched := httpfs.FetchCount
	if fetched == 0 {
		t.Fatal("no lazy fetches recorded")
	}
	if fetched >= total.Packages+total.Fonts+total.ExtraFiles {
		t.Fatalf("fetched %d files — lazy loading is not lazy", fetched)
	}

	// Second build: everything up to date, no new fetches (browser cache).
	before := httpfs.FetchCount
	code2, log2 := in.BuildPDF()
	if code2 != 0 || !strings.Contains(log2, "up to date") {
		t.Fatalf("rebuild: code=%d log=%s", code2, log2)
	}
	if httpfs.FetchCount != before {
		t.Fatalf("rebuild refetched files: %d -> %d", before, httpfs.FetchCount)
	}

	// Editing the source triggers an incremental rebuild.
	data, _ := in.ReadFile("/proj/main.tex")
	in.WriteFile("/proj/main.tex", append(data, []byte("\nNew paragraph.\n")...))
	code3, log3 := in.BuildPDF()
	if code3 != 0 || !strings.Contains(log3, "pdflatex main.tex") {
		t.Fatalf("incremental build: code=%d log=%s", code3, log3)
	}
}

func TestLatexAsyncModeAlsoWorksButSlower(t *testing.T) {
	inSync := bootTex(t, browsix.TexSync)
	startS := inSync.Now()
	codeS, _ := inSync.BuildPDF()
	syncTime := inSync.Now() - startS

	inAsync := bootTex(t, browsix.TexAsync)
	startA := inAsync.Now()
	codeA, _ := inAsync.BuildPDF()
	asyncTime := inAsync.Now() - startA
	if codeS != 0 || codeA != 0 {
		t.Fatalf("sync=%d async=%d", codeS, codeA)
	}
	// §5.2: the Emterpreter/async configuration is several times slower
	// (~3s vs ~12s in the paper).
	if asyncTime <= 2*syncTime {
		t.Fatalf("async (%dms) not >2x sync (%dms)", asyncTime/1e6, syncTime/1e6)
	}
}

func TestLatexMissingPackageFails(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	docTex := "\\documentclass{article}\n\\usepackage{does-not-exist}\nBody.\n"
	browsix.InstallTexProject(in, tex.SmallTree(), browsix.TexSync, docTex, "")
	res := in.RunCommand("/bin/sh -c 'cd /proj && pdflatex main.tex'")
	if res.Code == 0 {
		t.Fatal("pdflatex succeeded despite missing package")
	}
	if !strings.Contains(string(res.Stderr), "does-not-exist") {
		t.Fatalf("stderr: %s", res.Stderr)
	}
}

func TestLatexCancelViaSIGKILL(t *testing.T) {
	// "If the user cancels PDF generation, BROWSIX sends a SIGKILL
	// signal to these processes."
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	docTex, docBib := tex.SampleDocument()
	browsix.InstallTexProject(in, tex.SmallTree(), browsix.TexSync, docTex, docBib)

	code := -1
	done := false
	var makePid int
	in.Main(func() {
		in.Kernel.System("/bin/sh -c 'cd /proj && make'",
			func(pid, c int) { code = c; done = true }, nil, nil)
	})
	// Let the build get going, then kill the make process group leader.
	in.RunUntil(func() bool {
		for _, task := range in.Kernel.Tasks() {
			if strings.Contains(task.Path, "make") {
				makePid = task.Pid
				return true
			}
		}
		return done
	})
	if makePid == 0 {
		t.Fatal("make never started")
	}
	in.Main(func() { in.Kill(makePid, abi.SIGKILL) })
	if !in.RunUntil(func() bool { return done }) {
		t.Fatal("build did not terminate after SIGKILL")
	}
	if code == 0 {
		t.Fatal("cancelled build reported success")
	}
}

func head(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

// ---------------------------------------------------------------------------
// Meme generator (§5.1.1).
// ---------------------------------------------------------------------------

func bootMeme(t testing.TB) *browsix.Instance {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	browsix.InstallMeme(in, 50_000_000) // 50ms RTT "EC2"
	in.StartMemeServer()
	return in
}

func TestMemeServerInBrowsix(t *testing.T) {
	in := bootMeme(t)
	resp := in.FetchSync("GET", meme.Port, "/api/templates", nil)
	if resp.Status != 200 {
		t.Fatalf("templates status %d", resp.Status)
	}
	var names []string
	if err := json.Unmarshal(resp.Body, &names); err != nil || len(names) != 5 {
		t.Fatalf("templates: %s (%v)", resp.Body, err)
	}
	body, _ := json.Marshal(meme.GenRequest{Template: "doge", Top: "MUCH UNIX", Bottom: "VERY BROWSER"})
	gen := in.FetchSync("POST", meme.Port, "/api/meme", body)
	if gen.Status != 200 {
		t.Fatalf("generate status %d: %s", gen.Status, gen.Body)
	}
	desc := meme.DescribeImage(gen.Body)
	if !strings.Contains(desc, "256x256") || strings.Contains(desc, " 0 caption") {
		t.Fatalf("generated image: %s", desc)
	}
}

func TestMemeRemoteServerSameCode(t *testing.T) {
	in := bootMeme(t)
	resp := in.FetchRemoteSync(browsix.MemeHostName, "GET", "/api/templates", nil)
	if resp.Status != 200 {
		t.Fatalf("remote templates status %d", resp.Status)
	}
	body, _ := json.Marshal(meme.GenRequest{Template: "fry", Top: "NOT SURE IF", Bottom: "LOCAL OR REMOTE"})
	remote := in.FetchRemoteSync(browsix.MemeHostName, "POST", "/api/meme", body)
	local := in.FetchSync("POST", meme.Port, "/api/meme", body)
	if remote.Status != 200 || local.Status != 200 {
		t.Fatalf("remote=%d local=%d", remote.Status, local.Status)
	}
	// Same source code, same output bytes.
	if string(remote.Body) != string(local.Body) {
		t.Fatalf("remote and in-browsix servers disagree: %s vs %s",
			meme.DescribeImage(remote.Body), meme.DescribeImage(local.Body))
	}
}

func TestMemeDynamicRouting(t *testing.T) {
	in := bootMeme(t)
	if got := in.MemeRoute(true); got != "browsix" {
		t.Fatalf("desktop route = %s", got)
	}
	if got := in.MemeRoute(false); got != "remote" {
		t.Fatalf("mobile online route = %s", got)
	}
	in.Net.Offline = true
	if got := in.MemeRoute(false); got != "browsix" {
		t.Fatalf("offline route = %s", got)
	}
	// Offline generation still works — the case study's payoff.
	body, _ := json.Marshal(meme.GenRequest{Template: "doge", Top: "OFFLINE", Bottom: "STILL WORKS"})
	resp := in.GenerateMeme(in.MemeRoute(false), body)
	if resp.Status != 200 {
		t.Fatalf("offline generation failed: %d", resp.Status)
	}
	// And the remote route now fails.
	remote := in.FetchRemoteSync(browsix.MemeHostName, "GET", "/healthz", nil)
	if remote.Status != 0 {
		t.Fatalf("offline remote fetch returned %d", remote.Status)
	}
}

func TestMemeListFasterInBrowsixThanRemote(t *testing.T) {
	// §5.2: with network latency factored in, the in-Browsix request
	// beats the remote one ("three times as fast" vs EC2).
	in := bootMeme(t)
	t0 := in.Now()
	in.FetchSync("GET", meme.Port, "/api/templates", nil)
	local := in.Now() - t0
	t1 := in.Now()
	in.FetchRemoteSync(browsix.MemeHostName, "GET", "/api/templates", nil)
	remote := in.Now() - t1
	if local >= remote {
		t.Fatalf("in-browsix list (%dus) not faster than remote (%dus)", local/1000, remote/1000)
	}
	if remote < 2*local {
		t.Logf("warning: remote/local ratio %.1f below the paper's ~3x", float64(remote)/float64(local))
	}
}

// ---------------------------------------------------------------------------
// Terminal (§5.1.2).
// ---------------------------------------------------------------------------

func TestTerminalSession(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/home/notes.txt", []byte("apple\nbanana\napple pie\n"))
	term := in.NewTerminal()

	if got := term.Exec("echo hello terminal"); got != "hello terminal\n" {
		t.Fatalf("echo: %q", got)
	}
	// The paper's example pipeline.
	term.Exec("cat /home/notes.txt | grep apple > /home/apples.txt")
	if got := term.Exec("cat /home/apples.txt"); got != "apple\napple pie\n" {
		t.Fatalf("pipeline result: %q", got)
	}
	// Shell state persists across commands.
	term.Exec("cd /home")
	if got := term.Exec("pwd"); got != "/home\n" {
		t.Fatalf("pwd after cd: %q", got)
	}
	term.Exec("X=42")
	if got := term.Exec("echo $X"); got != "42\n" {
		t.Fatalf("var persistence: %q", got)
	}
	// Background execution with &.
	term.Exec("echo bg > /home/bg.txt &")
	term.Exec("wait")
	if got := term.Exec("cat /home/bg.txt"); got != "bg\n" {
		t.Fatalf("background job: %q", got)
	}
	if code := term.Close(); code != 0 {
		t.Fatalf("shell exit code %d", code)
	}
}

func TestTerminalRunsCaseStudyBinaries(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	docTex, docBib := tex.SampleDocument()
	browsix.InstallTexProject(in, tex.SmallTree(), browsix.TexSync, docTex, docBib)
	term := in.NewTerminal()
	out := term.Exec("cd /proj && make && ls main.pdf")
	if !strings.Contains(out, "main.pdf") {
		t.Fatalf("make via terminal: %q", out)
	}
	term.Close()
}
