// Package browsix is the public API of this Browsix reproduction: a
// deterministic, in-process simulation of the paper's system — a Unix
// kernel running on the browser main thread, processes on Web Workers,
// and the web-application-facing APIs of §4.1 grown into an idiomatic Go
// surface.
//
// Two pillars:
//
//   - Process handles. Start(Spec) launches a program with argv,
//     environment, working directory, and standard input, and returns a
//     *Process whose Wait, Signal, and live Stdout/Stderr streams drive
//     the simulation on demand:
//
//     inst := browsix.Boot(browsix.Config{})
//     browsix.InstallBase(inst)
//     p, _ := inst.Start(browsix.Spec{
//     Argv:  []string{"/bin/sh", "-c", "cat /greeting.txt | wc -c"},
//     Stdin: strings.NewReader(""),
//     })
//     out, _ := io.ReadAll(p.Stdout())
//     code, _ := p.Wait()
//
//   - A Go-native file system facade. Instance.FS() returns a view
//     implementing io/fs.FS, fs.ReadDirFS, fs.StatFS, fs.ReadFileFS and
//     fs.GlobFS over the kernel's VFS (memfs, zipfs, httpfs, overlay —
//     whatever is mounted), plus write-side extensions (WriteFile,
//     MkdirAll, Remove, Rename, Symlink):
//
//     inst.FS().WriteFile("greeting.txt", []byte("hello\n"), 0o644)
//     data, _ := fs.ReadFile(inst.FS(), "greeting.txt")
//
// Every synchronous helper posts its work to the simulated browser main
// thread (where the kernel lives) and drives the simulation until the
// operation completes, so plain straight-line Go code interacts with the
// CPS kernel underneath. Time inside the instance is virtual and fully
// deterministic; see EXPERIMENTS.md for how it is calibrated to the
// paper's measurements.
//
// The pre-redesign helpers (RunCommand, System, Instance.WriteFile, ...)
// remain as thin deprecated shims over Start and FS().
package browsix

import (
	"strings"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/coreutils"
	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/shell"
	"repro/internal/snapshot"
)

// Errno re-exports the kernel error type for API users.
type Errno = abi.Errno

// DefaultFlushAge is the write-back age after which a quiet dirty file
// is flushed in the background (virtual time): long-lived files land on
// their backends without an fsync, while bursty writers (a LaTeX build's
// log appends) still coalesce into few backend writes.
const DefaultFlushAge = int64(500 * 1e6) // 500 virtual ms

// Config controls Boot.
type Config struct {
	// Browser selects the cost profile; default Chrome (the only
	// browser supporting synchronous syscalls at paper time).
	Browser *browser.Profile
	// MaxSteps bounds the simulation (0 = default guard).
	MaxSteps uint64
	// PagePool, when non-nil, attaches this instance's page cache to a
	// shared arena — the fleet's one cross-shard structure — instead of
	// a private pool. Each instance draws slots from its own quota, so
	// its cache behaviour (and therefore its virtual clock) stays
	// bit-identical to a private-pool boot.
	PagePool *fs.PagePool
	// PagePoolQuota is the instance's slot quota in the shared arena.
	// <= 0 selects fs.DefaultPoolSlots, the private pool's capacity —
	// the value that keeps a shared-arena boot indistinguishable from a
	// serial one.
	PagePoolQuota int
	// EnableSnapshots turns on the checkpoint/fork subsystem
	// (internal/snapshot) with a private registry: the first boot of
	// each runtime captures a post-boot image, and every later spawn of
	// the same executable boots as a copy-on-write clone of it.
	EnableSnapshots bool
	// Snapshots attaches an existing registry instead — the fleet path:
	// instances share one pre-warmed, sealed registry whose image pages
	// live in the shared arena. Implies EnableSnapshots.
	Snapshots *snapshot.Registry
	// SnapshotQuota is the arena slot quota for captured image pages
	// (<= 0 selects DefaultSnapshotSlots). Used only when this Boot is
	// the one that attaches the registry's store.
	SnapshotQuota int
	// DisableDedup turns off the content-addressed page-sharing tier
	// for this instance (the dedup-off ablation). Dedup changes only
	// where immutable pages physically live — never their bytes or the
	// virtual clock — so this exists for differentials and experiments.
	DisableDedup bool
}

// DefaultSnapshotSlots is the default image-store quota: room for a few
// sync-runtime heap images (a 1 MiB heap is 256 slots).
const DefaultSnapshotSlots = 2048

// Instance is one booted browser + Browsix kernel.
type Instance struct {
	Sim     *sched.Sim
	Browser *browser.System
	Kernel  *core.Kernel
	// VFS is the kernel-side mount table (CPS API). Web applications
	// should prefer the synchronous io/fs facade returned by FS().
	VFS *fs.FileSystem
	Net *netsim.Net
}

// Boot creates a browser page with a Browsix kernel, an empty in-memory
// root file system, and a simulated network — the `Boot(...)` call of
// §2.2's setup code.
func Boot(cfg Config) *Instance {
	sim := sched.New()
	if cfg.MaxSteps > 0 {
		sim.MaxSteps = cfg.MaxSteps
	} else {
		sim.MaxSteps = 200_000_000
	}
	prof := browser.Chrome()
	if cfg.Browser != nil {
		prof = *cfg.Browser
	}
	sys := browser.NewSystem(sim, prof)
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	if cfg.PagePool != nil {
		quota := cfg.PagePoolQuota
		if quota <= 0 {
			quota = fs.DefaultPoolSlots
		}
		fsys.SetPagePool(cfg.PagePool, quota)
	}
	if cfg.DisableDedup {
		fsys.SetDedup(false)
	}
	// Age-based background write-back: dirty extents older than the
	// default age flush on a main-thread virtual timer, so quiet
	// long-lived files land on their backends without an fsync.
	fsys.SetFlushTimer(func(d int64, fn func()) {
		sim.PostDelay(sys.Main.Sched(), d, fn)
	})
	fsys.SetFlushAge(DefaultFlushAge)
	k := core.NewKernel(sys, fsys, rt.Loader(sys))
	if cfg.Snapshots != nil || cfg.EnableSnapshots {
		reg := cfg.Snapshots
		if reg == nil {
			reg = snapshot.NewRegistry()
		}
		quota := cfg.SnapshotQuota
		if quota <= 0 {
			quota = DefaultSnapshotSlots
		}
		// First store wins inside the registry: a fleet's shared
		// registry keeps the arena store its pre-warm instance attached.
		reg.SetStore(fsys.ImageStore(quota))
		k.Snapshots = reg
	}
	return &Instance{
		Sim:     sim,
		Browser: sys,
		Kernel:  k,
		VFS:     fsys,
		Net:     netsim.New(sim),
	}
}

// Main schedules fn on the browser main thread (where the kernel and the
// web application live); most kernel APIs must be invoked from there.
func (in *Instance) Main(fn func()) {
	in.Sim.Post(in.Browser.Main.Sched(), in.Browser.Main.Now(), fn)
}

// Run drives the simulation until quiescent.
func (in *Instance) Run() { in.Sim.Run() }

// RunUntil drives the simulation until cond holds; reports success.
func (in *Instance) RunUntil(cond func() bool) bool { return in.Sim.RunUntil(cond) }

// Now returns current virtual time in nanoseconds (max across contexts).
func (in *Instance) Now() int64 { return in.Sim.Now() }

// drive is the one synchronous-helper primitive: it posts fn to the
// browser main thread and runs the simulation until fn reports
// completion via the done callback it is handed. Every *Sync convenience
// in the package funnels through it, so main-thread scheduling is
// uniform. It reports false when the simulation quiesced without fn
// completing (a deadlock).
func (in *Instance) drive(fn func(done func())) bool {
	finished := false
	in.Main(func() { fn(func() { finished = true }) })
	return in.Sim.RunUntil(func() bool { return finished })
}

// Kill sends a signal to a process (the LaTeX editor's cancel button).
// It may be called from host code or from inside a Main event.
func (in *Instance) Kill(pid, sig int) Errno {
	if in.Sim.Cur() != nil {
		// Already inside a simulator event (a Main callback, an
		// OnListen notification, ...): call straight into the kernel.
		// Nesting a drive() here would re-enter the scheduler and
		// clear the enclosing event's context.
		return in.Kernel.Kill(pid, sig)
	}
	var out Errno = -1
	if !in.drive(func(done func()) {
		out = in.Kernel.Kill(pid, sig)
		done()
	}) {
		return abi.ESRCH
	}
	return out
}

// OnListen registers a socket notification (§4.1): cb fires when a
// process starts listening on port.
func (in *Instance) OnListen(port int, cb func(port int)) {
	in.Main(func() { in.Kernel.OnPortListen(port, cb) })
}

// Snapshots returns the instance's snapshot registry (nil when the
// subsystem is off).
func (in *Instance) Snapshots() *snapshot.Registry { return in.Kernel.Snapshots }

// CheckpointLive checkpoints a running process with bounded pause —
// iterative pre-copy over the soft-dirty bitmap while the guest keeps
// running, then a short final stop-copy — and returns the diagnostics
// dump. It drives the simulation until the checkpoint completes.
func (in *Instance) CheckpointLive(pid int) (*snapshot.Dump, Errno) {
	var dump *snapshot.Dump
	var out Errno = -1
	if !in.drive(func(done func()) {
		in.Kernel.CheckpointLive(pid, func(d *snapshot.Dump, err Errno) {
			dump, out = d, err
			done()
		})
	}) {
		return nil, abi.ESRCH
	}
	return dump, out
}

// ---------------------------------------------------------------------------
// Deprecated process helpers, re-layered over Start (see process.go).
// ---------------------------------------------------------------------------

// System invokes a command line with streaming stdout/stderr callbacks and
// an exit callback — the API of Figure 4. It must run on the main thread;
// call it inside Main() or use Start/RunCommand for the synchronous forms.
//
// Deprecated: use Start, which carries env, cwd, and stdin.
func (in *Instance) System(cmdline string, onExit func(pid, code int), onStdout, onStderr func([]byte)) {
	in.Kernel.System(cmdline, onExit, onStdout, onStderr)
}

// CommandResult is RunCommand's outcome.
type CommandResult struct {
	Pid     int
	Code    int
	Stdout  []byte
	Stderr  []byte
	Elapsed int64 // virtual ns from submission to exit
}

// RunCommand runs a command line to completion, driving the simulation.
// Launch failures surface as exit code 127, like system(3).
//
// Deprecated: use Start(Spec) and Process.Wait, which report launch
// errors and deadlocks as errors instead of panicking. This shim keeps
// the historical panic-on-deadlock behaviour.
func (in *Instance) RunCommand(cmdline string) CommandResult {
	var res CommandResult
	start := in.Browser.Main.Now()
	p, err := in.Start(Spec{Argv: core.SplitCmdline(cmdline)})
	if err != nil {
		if dl, ok := err.(*ErrDeadlock); ok {
			panic("browsix: RunCommand(" + cmdline + ") deadlocked; blocked ctxs: " + dl.ctxList())
		}
		res.Code = 127
		res.Elapsed = in.Browser.Main.Now() - start
		return res
	}
	code, werr := p.Wait()
	if dl, ok := werr.(*ErrDeadlock); ok {
		panic("browsix: RunCommand(" + cmdline + ") deadlocked; blocked ctxs: " + dl.ctxList())
	}
	res.Pid, res.Code = p.Pid, code
	res.Stdout = p.stdout.take()
	res.Stderr = p.stderr.take()
	res.Elapsed = in.Browser.Main.Now() - start
	return res
}

// ---------------------------------------------------------------------------
// Deprecated file-system conveniences, re-layered over the FS() facade.
// ---------------------------------------------------------------------------

// WriteFile stages a file, creating parent directories.
//
// Deprecated: use FS().WriteFile (or MkdirAll + WriteFile) for io/fs
// semantics and error values.
func (in *Instance) WriteFile(path string, data []byte) Errno {
	var out Errno = -1
	in.drive(func(done func()) {
		in.VFS.MkdirAll(posixDir(path), 0o755, func(err Errno) {
			if err != abi.OK {
				out = err
				done()
				return
			}
			in.VFS.WriteFile(path, data, 0o644, func(err Errno) { out = err; done() })
		})
	})
	return out
}

// ReadFile slurps a file (driving any lazy network fetch it needs).
//
// Deprecated: use FS().ReadFile.
func (in *Instance) ReadFile(path string) ([]byte, Errno) {
	var data []byte
	var out Errno = -1
	in.drive(func(done func()) {
		in.VFS.ReadFile(path, func(b []byte, err Errno) { data, out = b, err; done() })
	})
	return data, out
}

// Stat stats a path.
//
// Deprecated: use FS().Stat.
func (in *Instance) Stat(path string) (abi.Stat, Errno) {
	var st abi.Stat
	var out Errno = -1
	in.drive(func(done func()) {
		in.VFS.Stat(path, func(s abi.Stat, err Errno) { st, out = s, err; done() })
	})
	return st, out
}

func posixDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// ---------------------------------------------------------------------------
// Image staging.
// ---------------------------------------------------------------------------

// InstallBase stages the standard image: the Node-runtime coreutils of
// §5.1.2 in /usr/bin, the dash shell (Emterpreter runtime, as compiled in
// the paper) at /bin/sh and /bin/dash, plus the usual directory skeleton.
func InstallBase(in *Instance) {
	for _, d := range []string{"bin", "usr/bin", "tmp", "etc", "home"} {
		if err := in.FS().MkdirAll(d, 0o755); err != nil {
			panic("browsix: install /" + d + ": " + err.Error())
		}
	}
	image := map[string][]byte{}
	for _, name := range coreutils.Names() {
		rt.InstallExecutable(image, "/usr/bin/"+name, name, rt.NodeKind)
	}
	rt.InstallExecutable(image, "/usr/bin/test", "test", rt.NodeKind)
	rt.InstallExecutable(image, "/usr/bin/[", "[", rt.NodeKind)
	rt.InstallExecutable(image, "/usr/bin/exec", "exec", rt.NodeKind)
	// dash is a C program: Emterpreter + async syscalls (it forks).
	rt.InstallExecutable(image, "/bin/sh", "sh", rt.EmAsyncKind)
	rt.InstallExecutable(image, "/bin/dash", "dash", rt.EmAsyncKind)
	image["/etc/motd"] = []byte("Browsix (Go reproduction) — Unix in your browser\n")
	fsv := in.FS()
	for p, data := range image {
		if err := fsv.WriteFile(strings.TrimPrefix(p, "/"), data, 0o755); err != nil {
			panic("browsix: staging " + p + " failed: " + err.Error())
		}
	}
	_ = shell.Main // ensure the shell package is linked (programs register via init)
}

// InstallWasmCoreutils restages /usr/bin with synchronous-runtime (wasm)
// builds of the coreutils, so every utility syscall travels the sync
// transport — the staging the sync-transport case studies, the snapshot
// diagnostics, and the fleet COW tests use.
func InstallWasmCoreutils(in *Instance) {
	image := map[string][]byte{}
	for _, name := range coreutils.Names() {
		rt.InstallExecutable(image, "/usr/bin/"+name, name, rt.WasmKind)
	}
	for p, data := range image {
		if err := in.WriteFile(p, data); err != abi.OK {
			panic("browsix: restaging " + p + " failed: " + err.Error())
		}
	}
}
