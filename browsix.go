// Package browsix is the public API of this Browsix reproduction: a
// deterministic, in-process simulation of the paper's system — a Unix
// kernel running on the browser main thread, processes on Web Workers,
// and the web-application-facing APIs of §4.1 (Boot, kernel.system,
// socket notifications, and an XMLHttpRequest-like interface to
// in-browser servers).
//
// Quickstart:
//
//	inst := browsix.Boot(browsix.Config{})
//	browsix.InstallBase(inst)                       // coreutils + /bin/sh
//	inst.WriteFile("/greeting.txt", []byte("hello from browsix\n"))
//	res := inst.RunCommand("cat /greeting.txt")
//	fmt.Print(string(res.Stdout))
//
// Time inside the instance is virtual and fully deterministic; RunCommand
// and the other *Sync helpers drive the simulation until the operation
// completes. See EXPERIMENTS.md for how virtual time is calibrated to the
// paper's measurements.
package browsix

import (
	"fmt"
	"strings"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/core"
	"repro/internal/coreutils"
	"repro/internal/fs"
	"repro/internal/httpx"
	"repro/internal/netsim"
	"repro/internal/rt"
	"repro/internal/sched"
	"repro/internal/shell"
)

// Errno re-exports the kernel error type for API users.
type Errno = abi.Errno

// Config controls Boot.
type Config struct {
	// Browser selects the cost profile; default Chrome (the only
	// browser supporting synchronous syscalls at paper time).
	Browser *browser.Profile
	// MaxSteps bounds the simulation (0 = default guard).
	MaxSteps uint64
}

// Instance is one booted browser + Browsix kernel.
type Instance struct {
	Sim     *sched.Sim
	Browser *browser.System
	Kernel  *core.Kernel
	FS      *fs.FileSystem
	Net     *netsim.Net
}

// Boot creates a browser page with a Browsix kernel, an empty in-memory
// root file system, and a simulated network — the `Boot(...)` call of
// §2.2's setup code.
func Boot(cfg Config) *Instance {
	sim := sched.New()
	if cfg.MaxSteps > 0 {
		sim.MaxSteps = cfg.MaxSteps
	} else {
		sim.MaxSteps = 200_000_000
	}
	prof := browser.Chrome()
	if cfg.Browser != nil {
		prof = *cfg.Browser
	}
	sys := browser.NewSystem(sim, prof)
	clock := func() int64 { return sim.Now() }
	fsys := fs.NewFileSystem(fs.NewMemFS(clock), clock)
	k := core.NewKernel(sys, fsys, rt.Loader(sys))
	return &Instance{
		Sim:     sim,
		Browser: sys,
		Kernel:  k,
		FS:      fsys,
		Net:     netsim.New(sim),
	}
}

// Main schedules fn on the browser main thread (where the kernel and the
// web application live); most kernel APIs must be invoked from there.
func (in *Instance) Main(fn func()) {
	in.Sim.Post(in.Browser.Main.Sched(), in.Browser.Main.Now(), fn)
}

// Run drives the simulation until quiescent.
func (in *Instance) Run() { in.Sim.Run() }

// RunUntil drives the simulation until cond holds; reports success.
func (in *Instance) RunUntil(cond func() bool) bool { return in.Sim.RunUntil(cond) }

// Now returns current virtual time in nanoseconds (max across contexts).
func (in *Instance) Now() int64 { return in.Sim.Now() }

// ---------------------------------------------------------------------------
// Process control (Figure 4's kernel.system plus conveniences).
// ---------------------------------------------------------------------------

// System invokes a command line with streaming stdout/stderr callbacks and
// an exit callback — the API of Figure 4. It must run on the main thread;
// call it inside Main() or use RunCommand for the synchronous form.
func (in *Instance) System(cmdline string, onExit func(pid, code int), onStdout, onStderr func([]byte)) {
	in.Kernel.System(cmdline, onExit, onStdout, onStderr)
}

// CommandResult is RunCommand's outcome.
type CommandResult struct {
	Pid     int
	Code    int
	Stdout  []byte
	Stderr  []byte
	Elapsed int64 // virtual ns from submission to exit
}

// RunCommand runs a command line to completion, driving the simulation.
func (in *Instance) RunCommand(cmdline string) CommandResult {
	var res CommandResult
	done := false
	start := in.Browser.Main.Now()
	in.Main(func() {
		in.Kernel.System(cmdline,
			func(pid, code int) {
				res.Pid, res.Code = pid, code
				res.Elapsed = in.Browser.Main.Now() - start
				done = true
			},
			func(b []byte) { res.Stdout = append(res.Stdout, b...) },
			func(b []byte) { res.Stderr = append(res.Stderr, b...) })
	})
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic(fmt.Sprintf("browsix: RunCommand(%q) deadlocked; blocked ctxs: %v",
			cmdline, in.Sim.BlockedCtxs()))
	}
	in.Sim.Run() // drain output pumps
	return res
}

// Kill sends a signal to a process (the LaTeX editor's cancel button).
func (in *Instance) Kill(pid, sig int) Errno { return in.Kernel.Kill(pid, sig) }

// OnListen registers a socket notification (§4.1): cb fires when a
// process starts listening on port.
func (in *Instance) OnListen(port int, cb func(port int)) {
	in.Main(func() { in.Kernel.OnPortListen(port, cb) })
}

// ---------------------------------------------------------------------------
// File-system conveniences (driving the CPS kernel FS synchronously).
// ---------------------------------------------------------------------------

// WriteFile stages a file, creating parent directories.
func (in *Instance) WriteFile(path string, data []byte) Errno {
	var out Errno = -1
	dir := posixDir(path)
	in.FS.MkdirAll(dir, 0o755, func(err Errno) {
		if err != abi.OK {
			out = err
			return
		}
		in.FS.WriteFile(path, data, 0o644, func(err Errno) { out = err })
	})
	in.Sim.RunUntil(func() bool { return out != -1 })
	return out
}

// ReadFile slurps a file (driving any lazy network fetch it needs).
func (in *Instance) ReadFile(path string) ([]byte, Errno) {
	var data []byte
	var out Errno = -1
	in.Main(func() {
		in.FS.ReadFile(path, func(b []byte, err Errno) { data, out = b, err })
	})
	in.Sim.RunUntil(func() bool { return out != -1 })
	return data, out
}

// Stat stats a path.
func (in *Instance) Stat(path string) (abi.Stat, Errno) {
	var st abi.Stat
	var out Errno = -1
	in.FS.Stat(path, func(s abi.Stat, err Errno) { st, out = s, err })
	in.Sim.RunUntil(func() bool { return out != -1 })
	return st, out
}

func posixDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// ---------------------------------------------------------------------------
// The XMLHttpRequest-like API (§4.1): HTTP to in-Browsix servers over
// kernel-side sockets.
// ---------------------------------------------------------------------------

// HTTPResponse is the result of Fetch/FetchSync.
type HTTPResponse struct {
	Status int
	Header map[string]string
	Body   []byte
}

// Fetch sends an HTTP request to an in-Browsix socket server listening on
// port, invoking cb with the parsed response (or a 0 status on failure).
// It encapsulates connecting a Browsix socket, serializing the request,
// and parsing the (possibly chunked) response — §4.1.
func (in *Instance) Fetch(method string, port int, path string, body []byte, cb func(HTTPResponse)) {
	in.Main(func() {
		in.Kernel.Connect(port, func(conn *core.KernelConn, err Errno) {
			if err != abi.OK {
				cb(HTTPResponse{Status: 0})
				return
			}
			raw := httpx.WriteRequest(&httpx.Request{Method: method, Path: path, Body: body})
			conn.Write(raw, func(_ int, werr Errno) {
				if werr != abi.OK {
					conn.Close()
					cb(HTTPResponse{Status: 0})
					return
				}
				in.readHTTPResponse(conn, cb)
			})
		})
	})
}

// readHTTPResponse accumulates the whole response then parses it (the
// kernel side is CPS; parse over the buffered bytes).
func (in *Instance) readHTTPResponse(conn *core.KernelConn, cb func(HTTPResponse)) {
	var buf []byte
	var loop func()
	loop = func() {
		conn.Read(16*1024, func(b []byte, err Errno) {
			if err != abi.OK || len(b) == 0 {
				conn.Close()
				off := 0
				resp, perr := httpx.ReadResponse(func(n int) ([]byte, Errno) {
					if off >= len(buf) {
						return nil, abi.OK
					}
					end := off + n
					if end > len(buf) {
						end = len(buf)
					}
					out := buf[off:end]
					off = end
					return out, abi.OK
				})
				if perr != abi.OK {
					cb(HTTPResponse{Status: 0})
					return
				}
				cb(HTTPResponse{Status: resp.Status, Header: resp.Header, Body: resp.Body})
				return
			}
			buf = append(buf, b...)
			loop()
		})
	}
	loop()
}

// FetchSync is Fetch driving the simulation to completion.
func (in *Instance) FetchSync(method string, port int, path string, body []byte) HTTPResponse {
	var resp HTTPResponse
	done := false
	in.Fetch(method, port, path, body, func(r HTTPResponse) { resp = r; done = true })
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic("browsix: FetchSync deadlocked")
	}
	return resp
}

// FetchRemote sends the same logical request to a netsim remote host —
// the cloud path of the meme generator's dynamic routing.
func (in *Instance) FetchRemote(host, method, path string, body []byte, cb func(HTTPResponse)) {
	in.Main(func() {
		in.Net.Fetch(host, netsim.Request{Method: method, Path: path, Body: body}, func(r netsim.Response) {
			cb(HTTPResponse{Status: r.Status, Header: r.Header, Body: r.Body})
		})
	})
}

// FetchRemoteSync drives FetchRemote to completion.
func (in *Instance) FetchRemoteSync(host, method, path string, body []byte) HTTPResponse {
	var resp HTTPResponse
	done := false
	in.FetchRemote(host, method, path, body, func(r HTTPResponse) { resp = r; done = true })
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic("browsix: FetchRemoteSync deadlocked")
	}
	return resp
}

// ---------------------------------------------------------------------------
// Image staging.
// ---------------------------------------------------------------------------

// InstallBase stages the standard image: the Node-runtime coreutils of
// §5.1.2 in /usr/bin, the dash shell (Emterpreter runtime, as compiled in
// the paper) at /bin/sh and /bin/dash, plus the usual directory skeleton.
func InstallBase(in *Instance) {
	mkdir := func(p string) {
		in.FS.MkdirAll(p, 0o755, func(err Errno) {
			if err != abi.OK {
				panic("browsix: install " + p + ": " + err.String())
			}
		})
	}
	for _, d := range []string{"/bin", "/usr/bin", "/tmp", "/etc", "/home"} {
		mkdir(d)
	}
	image := map[string][]byte{}
	for _, name := range coreutils.Names() {
		rt.InstallExecutable(image, "/usr/bin/"+name, name, rt.NodeKind)
	}
	rt.InstallExecutable(image, "/usr/bin/test", "test", rt.NodeKind)
	rt.InstallExecutable(image, "/usr/bin/[", "[", rt.NodeKind)
	rt.InstallExecutable(image, "/usr/bin/exec", "exec", rt.NodeKind)
	// dash is a C program: Emterpreter + async syscalls (it forks).
	rt.InstallExecutable(image, "/bin/sh", "sh", rt.EmAsyncKind)
	rt.InstallExecutable(image, "/bin/dash", "dash", rt.EmAsyncKind)
	image["/etc/motd"] = []byte("Browsix (Go reproduction) — Unix in your browser\n")
	for p, data := range image {
		var done Errno = -1
		in.FS.WriteFile(p, data, 0o755, func(err Errno) { done = err })
		if done != abi.OK {
			panic("browsix: staging " + p + " failed: " + done.String())
		}
	}
	_ = shell.Main // ensure the shell package is linked (programs register via init)
}
