package browsix_test

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/browser"
	"repro/internal/sched"
)

// TestWorkerPriorityControl exercises the §6 "Worker Priority Control"
// proposal this reproduction implements: with two workers ready at the
// same instant, the higher-priority (lower nice) one runs first.
func TestWorkerPriorityControl(t *testing.T) {
	sim := sched.New()
	sim.MaxSteps = 10_000
	sys := browser.NewSystem(sim, browser.Chrome())
	url := sys.CreateObjectURL([]byte("w"))

	var order []string
	mk := func(name string, nice int) *browser.Worker {
		var w *browser.Worker
		w = sys.NewWorker(sys.Main, url, func(w *browser.Worker) {
			w.Ctx.OnMessage = func(browser.Value) { order = append(order, name) }
		})
		w.SetPriority(nice)
		return w
	}
	var low, high *browser.Worker
	sim.Post(sys.Main.Sched(), 0, func() {
		low = mk("low", 10)
		high = mk("high", -5)
	})
	sim.Run()
	// Schedule events becoming ready at the same instant on both worker
	// contexts, enqueuing the low-priority one first so FIFO order would
	// pick it; priority must override.
	at := sim.Now() + 1_000_000
	sim.Post(low.Ctx.Sched(), at, func() { order = append(order, "low") })
	sim.Post(high.Ctx.Sched(), at, func() { order = append(order, "high") })
	sim.Run()
	if len(order) != 2 || order[0] != "high" {
		t.Fatalf("order = %v, want high first", order)
	}
}

// TestSleepUtilityAdvancesVirtualTime checks the sleep utility and that
// virtual time, not wall time, is what passes.
func TestSleepUtilityAdvancesVirtualTime(t *testing.T) {
	in := bootBase(t)
	res := in.RunCommand("sleep 0.5")
	if res.Code != 0 {
		t.Fatalf("sleep failed: %s", res.Stderr)
	}
	if res.Elapsed < 500_000_000 {
		t.Fatalf("sleep 0.5 took %dms virtual", res.Elapsed/1e6)
	}
	res = in.RunCommand("sleep nonsense")
	if res.Code == 0 {
		t.Fatal("bad interval accepted")
	}
}

// TestOrphanReaping: a parent that exits before its child leaves the
// child reparented to the kernel and auto-reaped at exit — no zombie
// leaks.
func TestOrphanReaping(t *testing.T) {
	in := bootBase(t)
	// The subshell backgrounds a sleep and exits immediately; the sleep
	// outlives its parent.
	res := in.RunCommand("(sleep 0.2 &) ; echo parent-gone")
	if res.Code != 0 || !strings.Contains(string(res.Stdout), "parent-gone") {
		t.Fatalf("res=%d %q", res.Code, res.Stdout)
	}
	in.Run() // let the orphan finish
	for _, task := range in.Kernel.Tasks() {
		if task.StateName() == "Z" {
			t.Fatalf("zombie leaked: pid %d %s", task.Pid, task.Path)
		}
	}
	if n := len(in.Kernel.Tasks()); n != 0 {
		t.Fatalf("%d tasks leaked", n)
	}
}

// TestNoTaskLeaksAcrossWorkloads runs a busy mixed workload and then
// verifies the kernel's task table is empty — descriptor refcounts and
// zombie reaping hold up.
func TestNoTaskLeaksAcrossWorkloads(t *testing.T) {
	in := bootBase(t)
	in.WriteFile("/x", []byte("1\n2\n3\n"))
	cmds := []string{
		"cat /x | sort -r | head -n 1",
		"for i in a b c; do echo $i; done | wc -l",
		"echo deep | cat | cat | cat | cat",
		"false || true && echo ok",
		"(cd /tmp && pwd)",
	}
	for _, c := range cmds {
		if res := in.RunCommand(c); res.Code != 0 {
			t.Fatalf("%q: %d %s", c, res.Code, res.Stderr)
		}
	}
	in.Run()
	if n := len(in.Kernel.Tasks()); n != 0 {
		for _, task := range in.Kernel.Tasks() {
			t.Logf("leaked: pid %d %s %s", task.Pid, task.StateName(), task.Path)
		}
		t.Fatalf("%d tasks leaked", n)
	}
}

// TestDescriptorSharingSemantics: dup2'd/inherited descriptors share
// offsets (classic Unix), observable through appended shell output.
func TestDescriptorSharingSemantics(t *testing.T) {
	in := bootBase(t)
	// Both writers inherit the same descriptor; output interleaves
	// instead of overwriting.
	res := in.RunCommand("/bin/sh -c 'echo first; echo second' > /dev-null-sub 2>&1; cat /dev-null-sub")
	_ = res
	out := runOK(t, in, "/bin/sh -c '{ echo a; echo b; } 2>/dev/null; true' 2>/dev/null; echo tail")
	_ = out
	// The load-bearing assertion: two echos through one redirected fd
	// append rather than clobber.
	runOK(t, in, "(echo one; echo two) > /shared-out")
	data, err := in.ReadFile("/shared-out")
	if err != abi.OK || string(data) != "one\ntwo\n" {
		t.Fatalf("shared offset: %q (%v)", data, err)
	}
}
