package browsix_test

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
)

// Tests for the process-handle API: Start(Spec) → *Process, live streams,
// env/cwd/stdin plumbing, and the typed deadlock error. The interactive
// stdin cases double as the acceptance differential: byte-identical
// output across the scalar and ring synchronous transports.

// bootTransport boots an instance whose coreutils run on the synchronous
// (wasm) runtime, with the ring transport on or off.
func bootTransport(t *testing.T, disableRing bool) *browsix.Instance {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	in.Kernel.DisableRing = disableRing
	installWasmCoreutils(t, in)
	return in
}

func TestStartEnvDirPlumbing(t *testing.T) {
	in := bootBase(t)
	p, err := in.Start(browsix.Spec{
		Argv: []string{"/bin/sh", "-c", "pwd; echo pwd=$PWD; echo greeting=$GREETING"},
		Env:  []string{"PATH=/usr/bin:/bin", "GREETING=bonjour"},
		Dir:  "/home",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("exit %d (%v)", code, werr)
	}
	want := "/home\npwd=/home\ngreeting=bonjour\n"
	if string(out) != want {
		t.Fatalf("stdout = %q, want %q", out, want)
	}
}

func TestShellPWDTracking(t *testing.T) {
	in := bootBase(t)
	p, err := in.Start(browsix.Spec{
		Argv: []string{"/bin/sh", "-c", "cd /tmp; echo $PWD; echo $OLDPWD; cd - ; echo $PWD"},
		Dir:  "/home",
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("exit %d (%v)", code, werr)
	}
	want := "/tmp\n/home\n/home\n/home\n" // cd - echoes the directory
	if string(out) != want {
		t.Fatalf("PWD tracking = %q, want %q", out, want)
	}
}

func TestStartPATHFromSpecEnv(t *testing.T) {
	in := bootBase(t)
	// A bare command name resolves through the spec's PATH, not the
	// default: hide /usr/bin and the lookup must fail...
	if _, err := in.Start(browsix.Spec{
		Argv: []string{"echo", "hi"},
		Env:  []string{"PATH=/nowhere"},
	}); err == nil {
		t.Fatal("bare name resolved despite empty PATH")
	}
	// ...while the standard PATH finds it.
	p, err := in.Start(browsix.Spec{Argv: []string{"echo", "hi"}})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	p.Wait()
	if string(out) != "hi\n" {
		t.Fatalf("stdout %q", out)
	}
}

func TestStartUnknownExecutable(t *testing.T) {
	in := bootBase(t)
	_, err := in.Start(browsix.Spec{Argv: []string{"/no/such/binary"}})
	var be *browsix.Error
	if !errors.As(err, &be) {
		t.Fatalf("want *browsix.Error, got %T: %v", err, err)
	}
	// The chain matches both the io/fs sentinel and the exact errno.
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if !errors.Is(err, abi.ENOENT) {
		t.Fatalf("want exact-errno match for ENOENT, got %v", err)
	}
	// Facade errors carry the same dual chain.
	if _, ferr := in.FS().ReadFile("nope.txt"); !errors.Is(ferr, abi.ENOENT) || !errors.Is(ferr, fs.ErrNotExist) {
		t.Fatalf("facade errno chain: %v", ferr)
	}
}

// TestWaitDoesNotRunUnrelatedGuests: Wait on a finished process drains
// only its own streams instead of running the whole simulation to
// quiescence — a concurrent long-running guest keeps its remaining
// virtual time.
func TestWaitDoesNotRunUnrelatedGuests(t *testing.T) {
	in := bootBase(t)
	bg, err := in.Start(browsix.Spec{Argv: []string{"sleep", "30"}})
	if err != nil {
		t.Fatalf("start sleeper: %v", err)
	}
	p, err := in.Start(browsix.Spec{Argv: []string{"echo", "quick"}})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("exit %d (%v)", code, werr)
	}
	// The old Wait ended with Sim.Run(), which would have driven the
	// sleeper all the way to its exit; stopping at stream EOF leaves it
	// mid-flight.
	if bg.Exited() {
		t.Fatal("Wait ran the 30s sleeper to completion")
	}
	if err := bg.Signal(abi.SIGKILL); err != nil {
		t.Fatalf("cleanup: %v", err)
	}
	bg.Wait()
}

// TestWriteStdinAfterCloseRejected: a non-Interactive process's stdin
// is already closed (immediate EOF); WriteStdin must fail rather than
// smuggle bytes past the EOF the guest was promised.
func TestWriteStdinAfterCloseRejected(t *testing.T) {
	in := bootBase(t)
	p, err := in.Start(browsix.Spec{Argv: []string{"cat"}})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if werr := p.WriteStdin([]byte("smuggled\n")); werr == nil {
		t.Fatal("WriteStdin succeeded on closed stdin")
	}
	out, _ := io.ReadAll(p.Stdout())
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("exit %d (%v)", code, werr)
	}
	if len(out) != 0 {
		t.Fatalf("guest saw bytes past EOF: %q", out)
	}
	// Same once an Interactive session delivers EOF explicitly.
	p2, _ := in.Start(browsix.Spec{Argv: []string{"cat"}, Interactive: true})
	p2.CloseStdin()
	if werr := p2.WriteStdin([]byte("late\n")); werr == nil {
		t.Fatal("WriteStdin succeeded after CloseStdin")
	}
	p2.Wait()
}

func TestStartStdinReader(t *testing.T) {
	in := bootBase(t)
	// A shell pipeline reading "host stdin": the Spec.Stdin reader is
	// pumped into the guest with backpressure; its EOF becomes guest EOF.
	p, err := in.Start(browsix.Spec{
		Argv:  []string{"/bin/sh", "-c", "cat | wc -l"},
		Stdin: strings.NewReader("a\nb\nc\n"),
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("exit %d (%v)", code, werr)
	}
	if strings.TrimSpace(string(out)) != "3" {
		t.Fatalf("wc -l over host stdin = %q", out)
	}
}

func TestStartStdoutSinkStreamsLive(t *testing.T) {
	in := bootBase(t)
	var sink bytes.Buffer
	p, err := in.Start(browsix.Spec{
		Argv:   []string{"echo", "to-sink"},
		Stdout: &sink,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if code, _ := p.Wait(); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if sink.String() != "to-sink\n" {
		t.Fatalf("sink = %q", sink.String())
	}
	// With a sink configured the buffered stream stays empty.
	if b, _ := io.ReadAll(p.Stdout()); len(b) != 0 {
		t.Fatalf("buffered stream not empty: %q", b)
	}
}

// TestInteractiveCatAcrossTransports is the acceptance case: cat fed
// incrementally then EOF, byte-identical across the scalar and ring
// synchronous transports (and the async runtime).
func TestInteractiveCatAcrossTransports(t *testing.T) {
	feed := []string{"first line\n", "second ", "line\n", "third\n"}
	run := func(name string, in *browsix.Instance) string {
		p, err := in.Start(browsix.Spec{
			Argv:        []string{"cat"},
			Interactive: true,
		})
		if err != nil {
			t.Fatalf("%s: start: %v", name, err)
		}
		var echoed bytes.Buffer
		for _, chunk := range feed {
			if werr := p.WriteStdin([]byte(chunk)); werr != nil {
				t.Fatalf("%s: write stdin: %v", name, werr)
			}
			// Read the echo back incrementally: the stream is live.
			buf := make([]byte, 64)
			for echoed.Len() < countFed(feed, chunk) {
				n, rerr := p.Stdout().Read(buf)
				if rerr != nil {
					t.Fatalf("%s: read: %v", name, rerr)
				}
				echoed.Write(buf[:n])
			}
		}
		p.CloseStdin()
		rest, _ := io.ReadAll(p.Stdout())
		echoed.Write(rest)
		if code, werr := p.Wait(); code != 0 || werr != nil {
			t.Fatalf("%s: exit %d (%v)", name, code, werr)
		}
		return echoed.String()
	}

	want := strings.Join(feed, "")
	async := run("async", bootBase(t))
	scalar := run("scalar", bootTransport(t, true))
	ring := run("ring", bootTransport(t, false))
	if async != want || scalar != want || ring != want {
		t.Fatalf("interactive cat diverged:\nasync  %q\nscalar %q\nring   %q\nwant   %q",
			async, scalar, ring, want)
	}
}

// countFed returns the total bytes fed up to and including chunk.
func countFed(feed []string, upto string) int {
	n := 0
	for _, c := range feed {
		n += len(c)
		if c == upto {
			break
		}
	}
	return n
}

// TestShellPipelineHostStdinAcrossTransports: a pipeline whose first
// stage reads host stdin, across all three transports, byte-identical.
func TestShellPipelineHostStdinAcrossTransports(t *testing.T) {
	input := "delta\nalpha\ncharlie\nbravo\nalpha\n"
	run := func(name string, in *browsix.Instance) string {
		p, err := in.Start(browsix.Spec{
			Argv:  []string{"/bin/sh", "-c", "cat | sort -u | tee /sorted.txt | wc -l"},
			Stdin: strings.NewReader(input),
		})
		if err != nil {
			t.Fatalf("%s: start: %v", name, err)
		}
		out, _ := io.ReadAll(p.Stdout())
		if code, werr := p.Wait(); code != 0 || werr != nil {
			t.Fatalf("%s: exit %d (%v)", name, code, werr)
		}
		sorted, ferr := in.FS().ReadFile("sorted.txt")
		if ferr != nil {
			t.Fatalf("%s: sorted.txt: %v", name, ferr)
		}
		return string(out) + "|" + string(sorted)
	}
	async := run("async", bootBase(t))
	scalar := run("scalar", bootTransport(t, true))
	ring := run("ring", bootTransport(t, false))
	if async != scalar || scalar != ring {
		t.Fatalf("pipeline over host stdin diverged:\nasync  %q\nscalar %q\nring   %q",
			async, scalar, ring)
	}
	count, _, _ := strings.Cut(async, "|")
	if strings.TrimSpace(count) != "4" {
		t.Fatalf("unexpected pipeline output %q", async)
	}
}

// TestWaitReturnsTypedDeadlock: a guest blocked forever on stdin makes
// Wait return *ErrDeadlock (carrying the blocked contexts) instead of
// panicking — and the process stays usable: feeding stdin unblocks it.
func TestWaitReturnsTypedDeadlock(t *testing.T) {
	in := bootTransport(t, false) // sync runtime: the guest futex-blocks
	p, err := in.Start(browsix.Spec{
		Argv:        []string{"cat"},
		Interactive: true,
	})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	_, werr := p.Wait()
	var dl *browsix.ErrDeadlock
	if !errors.As(werr, &dl) {
		t.Fatalf("want *ErrDeadlock, got %T: %v", werr, werr)
	}
	if len(dl.BlockedCtxs) == 0 {
		t.Fatalf("deadlock carries no blocked contexts: %v", dl)
	}
	// Recover: deliver EOF and the process exits cleanly.
	p.CloseStdin()
	if code, werr := p.Wait(); code != 0 || werr != nil {
		t.Fatalf("after EOF: exit %d (%v)", code, werr)
	}
}

// TestStreamReadReportsDeadlock: reading a stream that can never produce
// surfaces the same typed error.
func TestStreamReadReportsDeadlock(t *testing.T) {
	in := bootTransport(t, false)
	p, err := in.Start(browsix.Spec{Argv: []string{"cat"}, Interactive: true})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	buf := make([]byte, 8)
	_, rerr := p.Stdout().Read(buf)
	var dl *browsix.ErrDeadlock
	if !errors.As(rerr, &dl) {
		t.Fatalf("want *ErrDeadlock from stream read, got %v", rerr)
	}
	p.CloseStdin()
	p.Wait()
}

// TestRunCommandShimMatchesStart: the deprecated shim and the new API
// agree byte for byte.
func TestRunCommandShimMatchesStart(t *testing.T) {
	mk := func() *browsix.Instance {
		in := bootBase(t)
		in.WriteFile("/x.txt", []byte("one\ntwo\n"))
		return in
	}
	cmd := "cat /x.txt | wc -l"
	in1 := mk()
	res := in1.RunCommand(cmd)
	in2 := mk()
	p, err := in2.Start(browsix.Spec{Argv: browsix.SplitCmdline(cmd)})
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	out, _ := io.ReadAll(p.Stdout())
	code, _ := p.Wait()
	if res.Code != code || string(res.Stdout) != string(out) {
		t.Fatalf("shim (%d, %q) != Start (%d, %q)", res.Code, res.Stdout, code, out)
	}
}
