package browsix

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/abi"
	"repro/internal/core"
)

// This file is the process-handle half of the public API (§4.1 grown
// idiomatic): Start(Spec) launches a Browsix process and returns a
// *Process whose methods drive the simulation on demand.

// Spec describes a process to launch.
type Spec struct {
	// Argv is the argument vector. Argv[0] is the program: an absolute
	// path, a path relative to Dir, or a bare name resolved against the
	// environment's PATH.
	Argv []string
	// Env is the child environment ("KEY=value"); nil selects the
	// default Browsix environment (PATH, HOME, TERM, USER).
	Env []string
	// Dir is the working directory; "" means "/".
	Dir string
	// Stdin, when non-nil, is pumped into the guest through the kernel
	// pipe layer with backpressure; its EOF becomes EOF on the guest's
	// standard input. A read returning 0 bytes with a nil error is
	// treated as EOF.
	Stdin io.Reader
	// Interactive keeps standard input open beyond Stdin (or with no
	// Stdin at all): feed it incrementally with Process.WriteStdin and
	// finish with Process.CloseStdin. When both Stdin and Interactive
	// are unset the guest sees immediate EOF.
	Interactive bool
	// Stdout/Stderr, when non-nil, receive that stream as it is
	// produced instead of buffering it for the Process.Stdout/Stderr
	// readers.
	Stdout io.Writer
	Stderr io.Writer
}

// Process is a handle on a launched Browsix process.
type Process struct {
	// Pid is the kernel process ID.
	Pid int

	in      *Instance
	argv0   string
	console *core.Console
	stdout  *stream
	stderr  *stream
	exited  bool
	code    int
	waited  bool
}

// ErrDeadlock reports that the simulation went quiescent before the
// awaited operation could complete: some context is blocked forever.
// BlockedCtxs names the stuck scheduler contexts, as Sim.BlockedCtxs
// reported them.
type ErrDeadlock struct {
	Op          string
	BlockedCtxs []string
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("browsix: %s deadlocked; blocked ctxs: %s", e.Op, e.ctxList())
}

func (e *ErrDeadlock) ctxList() string {
	if len(e.BlockedCtxs) == 0 {
		return "(none futex-blocked)"
	}
	return strings.Join(e.BlockedCtxs, ", ")
}

// deadlockErr snapshots the blocked contexts for an ErrDeadlock.
func (in *Instance) deadlockErr(op string) *ErrDeadlock {
	return &ErrDeadlock{Op: op, BlockedCtxs: in.Sim.BlockedCtxs()}
}

// Error is a kernel-level failure surfaced through the public API.
type Error struct {
	Op    string
	Path  string
	Errno Errno
}

func (e *Error) Error() string {
	if e.Path == "" {
		return "browsix: " + e.Op + ": " + e.Errno.String()
	}
	return "browsix: " + e.Op + " " + e.Path + ": " + e.Errno.String()
}

// Unwrap exposes the errno so errors.Is can match both the exact Errno
// and (via Errno's own mapping) the io/fs sentinel errors.
func (e *Error) Unwrap() error { return errnoErr(e.Errno) }

// SplitCmdline turns a shell-ish command line into the argv Start
// expects: lines containing shell metacharacters run under /bin/sh -c,
// anything else is split on whitespace.
func SplitCmdline(cmdline string) []string { return core.SplitCmdline(cmdline) }

// Start launches a process described by spec, driving the simulation
// until the launch outcome is known. On success the returned Process is
// live: its Stdout/Stderr streams, Wait, and Signal drive the simulation
// as needed. A launch failure (missing executable, exec format error)
// returns *Error; a simulation stall returns *ErrDeadlock.
func (in *Instance) Start(spec Spec) (*Process, error) {
	if len(spec.Argv) == 0 {
		return nil, &Error{Op: "start", Errno: abi.EINVAL}
	}
	p := &Process{in: in, argv0: spec.Argv[0]}
	p.stdout = &stream{p: p, name: "stdout", sink: spec.Stdout}
	p.stderr = &stream{p: p, name: "stderr", sink: spec.Stderr}

	started := false
	serr := abi.OK
	in.Main(func() {
		p.console = in.Kernel.StartProcess(core.ProcSpec{
			Argv:      spec.Argv,
			Env:       spec.Env,
			Dir:       spec.Dir,
			KeepStdin: spec.Interactive || spec.Stdin != nil,
			OnStart: func(pid int, err abi.Errno) {
				p.Pid, serr = pid, err
				started = true
			},
			OnExit:   func(pid, code int) { p.exited, p.code = true, code },
			OnStdout: p.stdout.push,
			OnStderr: p.stderr.push,
		})
	})
	if !in.Sim.RunUntil(func() bool { return started }) {
		return nil, in.deadlockErr("start " + p.argv0)
	}
	if serr != abi.OK {
		return nil, &Error{Op: "start", Path: p.argv0, Errno: serr}
	}
	if spec.Stdin != nil {
		// The pump runs as simulator events on the main thread; the
		// guest blocks on its first stdin read until the pump catches
		// up, so starting it after launch confirmation loses nothing.
		in.Main(func() { p.pumpStdin(spec.Stdin, spec.Interactive) })
	}
	return p, nil
}

// pumpStdin streams r into the guest's standard input from inside
// simulator events, pacing itself on pipe backpressure: the next host
// read happens only after the previous chunk is fully buffered. Runs on
// the main thread (called from OnStart).
func (p *Process) pumpStdin(r io.Reader, keepOpen bool) {
	buf := make([]byte, 32*1024)
	finish := func() {
		if !keepOpen {
			p.console.CloseStdin()
		}
	}
	var step func()
	step = func() {
		n, rerr := r.Read(buf)
		if n == 0 {
			// EOF, a read error, or a degenerate (0, nil) read: the
			// guest sees EOF (unless the caller keeps stdin open).
			finish()
			return
		}
		data := buf[:n]
		p.console.WriteStdinCB(data, func(_ int, werr abi.Errno) {
			if werr != abi.OK || rerr != nil {
				finish()
				return
			}
			step()
		})
	}
	step()
}

// Wait drives the simulation until the process exits and its output
// streams drain, returning the exit code (128+signal for signal deaths).
// If the simulation quiesces first — every remaining context is blocked —
// Wait returns *ErrDeadlock naming the stuck contexts; the process stays
// live, so an interactive caller can feed stdin and Wait again.
func (p *Process) Wait() (int, error) {
	if p.waited {
		return p.code, nil
	}
	if !p.in.Sim.RunUntil(func() bool { return p.exited }) {
		return 0, p.in.deadlockErr(fmt.Sprintf("wait %s (pid %d)", p.argv0, p.Pid))
	}
	// Drain this process's output pumps — and only this process's:
	// stopping at stream EOF keeps Wait from running an unrelated busy
	// guest to quiescence. If a stream never closes (an orphaned
	// grandchild kept the descriptor), the RunUntil ends at quiescence
	// and the known exit code is still the answer.
	p.in.Sim.RunUntil(func() bool { return p.stdout.closed && p.stderr.closed })
	p.waited = true
	return p.code, nil
}

// Exited reports whether the process has exited (without driving the
// simulation).
func (p *Process) Exited() bool { return p.exited }

// ExitCode returns the exit code once Exited; -1 before.
func (p *Process) ExitCode() int {
	if !p.exited {
		return -1
	}
	return p.code
}

// Signal sends sig to the process. An already-exited process yields
// ESRCH, as kill(2) does. Safe from host code and from inside Main
// events alike.
func (p *Process) Signal(sig int) error {
	if err := p.in.Kill(p.Pid, sig); err != abi.OK {
		return &Error{Op: "signal", Path: fmt.Sprintf("pid %d", p.Pid), Errno: err}
	}
	return nil
}

// WriteStdin feeds bytes to an Interactive process's standard input,
// driving the simulation until they are buffered (pipe backpressure).
func (p *Process) WriteStdin(data []byte) error {
	werr := abi.OK
	if !p.in.drive(func(done func()) {
		p.console.WriteStdinCB(data, func(_ int, err abi.Errno) { werr = err; done() })
	}) {
		return p.in.deadlockErr("write stdin")
	}
	if werr != abi.OK {
		return &Error{Op: "write stdin", Errno: werr}
	}
	return nil
}

// CloseStdin delivers EOF on standard input.
func (p *Process) CloseStdin() {
	p.in.drive(func(done func()) {
		p.console.CloseStdin()
		done()
	})
}

// Stdout returns the live standard-output stream. Reads return data as
// the guest produces it, driving the simulation while the stream is
// empty; EOF arrives when the guest side closes (normally at exit). With
// a Spec.Stdout sink configured the stream is empty (bytes went to the
// sink).
func (p *Process) Stdout() io.Reader { return p.stdout }

// Stderr returns the live standard-error stream (see Stdout).
func (p *Process) Stderr() io.Reader { return p.stderr }

// stream buffers one output stream and adapts it to io.Reader.
type stream struct {
	p      *Process
	name   string
	sink   io.Writer
	buf    []byte
	closed bool
}

// push is the kernel pump callback: data, or nil/empty at EOF.
func (s *stream) push(b []byte) {
	if len(b) == 0 {
		s.closed = true
		return
	}
	if s.sink != nil {
		n, err := s.sink.Write(b)
		if err == nil && n == len(b) {
			return
		}
		// A failing sink must not silently swallow guest output: stop
		// forwarding and buffer the unwritten rest for the
		// Stdout/Stderr reader.
		s.sink = nil
		if n < 0 || n > len(b) {
			n = 0
		}
		b = b[n:]
	}
	s.buf = append(s.buf, b...)
}

func (s *stream) Read(b []byte) (int, error) {
	if s.sink != nil {
		return 0, io.EOF // the sink owns this stream's bytes
	}
	if len(s.buf) == 0 && !s.closed {
		if !s.p.in.Sim.RunUntil(func() bool { return len(s.buf) > 0 || s.closed }) &&
			len(s.buf) == 0 && !s.closed {
			return 0, s.p.in.deadlockErr("read " + s.name)
		}
	}
	if len(s.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(b, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// take drains the buffered bytes (the RunCommand shim's accessor).
func (s *stream) take() []byte {
	out := s.buf
	s.buf = nil
	return out
}
