package browsix_test

import (
	"errors"
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
)

// Signal-delivery coverage for the process-handle API: a sleeping guest,
// a guest blocked mid-pipe-write, and an already-exited pid, across both
// synchronous transports (scalar wake-cell and ring).

// transports enumerates the sync-transport configurations under test.
var transports = []struct {
	name        string
	disableRing bool
}{
	{"scalar", true},
	{"ring", false},
}

func TestSignalSleepingGuest(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			in := bootTransport(t, tr.disableRing)
			p, err := in.Start(browsix.Spec{Argv: []string{"sleep", "5"}})
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			if serr := p.Signal(abi.SIGKILL); serr != nil {
				t.Fatalf("signal: %v", serr)
			}
			code, werr := p.Wait()
			if werr != nil {
				t.Fatalf("wait: %v", werr)
			}
			if code != 128+abi.SIGKILL {
				t.Fatalf("exit code %d, want %d", code, 128+abi.SIGKILL)
			}
			// Virtual time must not have advanced the full five seconds.
			if in.Now() > 4_000_000_000 {
				t.Fatalf("kill did not interrupt the sleep: now=%dms", in.Now()/1e6)
			}
		})
	}
}

func TestSignalMidPipeWriteGuest(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			in := bootTransport(t, tr.disableRing)
			// Stage a payload much larger than the 64 KiB pipe buffer, so
			// cat blocks in a write syscall once sleep (which never
			// reads) lets the pipe fill.
			if err := in.FS().WriteFile("big.bin", make([]byte, 512*1024), 0o644); err != nil {
				t.Fatalf("stage: %v", err)
			}
			p, err := in.Start(browsix.Spec{
				Argv: []string{"/bin/sh", "-c", "cat /big.bin | sleep 1"},
			})
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			// Run until cat exists, has issued writes, and is wedged
			// against pipe backpressure: its worker is the only context
			// that futex-blocks (sleep burns CPU; the shell is async).
			var catPid int
			in.RunUntil(func() bool {
				for _, task := range in.Kernel.Tasks() {
					if strings.Contains(task.Path, "/cat") {
						catPid = task.Pid
					}
				}
				writes := in.Kernel.SyscallCount["write"] + in.Kernel.SyscallCount["writev"]
				return catPid != 0 && writes > 0 && len(in.Sim.BlockedCtxs()) > 0
			})
			if catPid == 0 {
				t.Fatal("cat never spawned")
			}
			if err := in.Kill(catPid, abi.SIGKILL); err != abi.OK {
				t.Fatalf("kill cat: %v", err)
			}
			// The pipeline still completes: sleep finishes and the shell
			// reports its status.
			code, werr := p.Wait()
			if werr != nil {
				t.Fatalf("wait after mid-write kill: %v", werr)
			}
			if code != 0 {
				t.Fatalf("pipeline exit %d", code)
			}
			// The killed writer is gone — no zombie, no wedged worker.
			if task := in.Kernel.Task(catPid); task != nil {
				t.Fatalf("killed cat still in task table: %s", task.StateName())
			}
			if in.Kernel.SignalsDelivered.Load() == 0 {
				t.Fatal("kernel recorded no signal deliveries")
			}
		})
	}
}

func TestSignalExitedPidESRCH(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			in := bootTransport(t, tr.disableRing)
			p, err := in.Start(browsix.Spec{Argv: []string{"true"}})
			if err != nil {
				t.Fatalf("start: %v", err)
			}
			if code, werr := p.Wait(); code != 0 || werr != nil {
				t.Fatalf("exit %d (%v)", code, werr)
			}
			serr := p.Signal(abi.SIGTERM)
			var be *browsix.Error
			if !errors.As(serr, &be) || be.Errno != abi.ESRCH {
				t.Fatalf("signal after exit: want ESRCH, got %v", serr)
			}
			// The instance-level helper agrees.
			if got := in.Kill(p.Pid, abi.SIGTERM); got != abi.ESRCH {
				t.Fatalf("Kill(exited) = %v, want ESRCH", got)
			}
			// And a never-allocated pid too.
			if got := in.Kill(9999, abi.SIGTERM); got != abi.ESRCH {
				t.Fatalf("Kill(9999) = %v, want ESRCH", got)
			}
		})
	}
}
