package browsix

import (
	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/netsim"
)

// The XMLHttpRequest-like API (§4.1): HTTP to in-Browsix servers over
// kernel-side sockets, plus the netsim remote-host twin the case studies
// route against.

// HTTPResponse is the result of Fetch/FetchSync.
type HTTPResponse struct {
	Status int
	Header map[string]string
	Body   []byte
}

// Fetch sends an HTTP request to an in-Browsix socket server listening on
// port, invoking cb with the parsed response (or a 0 status on failure).
// It encapsulates connecting a Browsix socket, serializing the request,
// and parsing the (possibly chunked) response — §4.1.
func (in *Instance) Fetch(method string, port int, path string, body []byte, cb func(HTTPResponse)) {
	in.Main(func() {
		in.Kernel.Connect(port, func(conn *core.KernelConn, err Errno) {
			if err != abi.OK {
				cb(HTTPResponse{Status: 0})
				return
			}
			// One-shot client: request an explicit close so the read loop
			// below (which accumulates until EOF) terminates under the
			// keep-alive server.
			raw := httpx.WriteRequest(&httpx.Request{
				Method: method, Path: path, Body: body,
				Header: map[string]string{"Connection": "close"},
			})
			conn.Write(raw, func(_ int, werr Errno) {
				if werr != abi.OK {
					conn.Close()
					cb(HTTPResponse{Status: 0})
					return
				}
				in.readHTTPResponse(conn, cb)
			})
		})
	})
}

// readHTTPResponse accumulates the whole response then parses it (the
// kernel side is CPS; parse over the buffered bytes).
func (in *Instance) readHTTPResponse(conn *core.KernelConn, cb func(HTTPResponse)) {
	var buf []byte
	var loop func()
	loop = func() {
		conn.Read(16*1024, func(b []byte, err Errno) {
			if err != abi.OK || len(b) == 0 {
				conn.Close()
				off := 0
				resp, perr := httpx.ReadResponse(func(n int) ([]byte, Errno) {
					if off >= len(buf) {
						return nil, abi.OK
					}
					end := off + n
					if end > len(buf) {
						end = len(buf)
					}
					out := buf[off:end]
					off = end
					return out, abi.OK
				})
				if perr != abi.OK {
					cb(HTTPResponse{Status: 0})
					return
				}
				cb(HTTPResponse{Status: resp.Status, Header: resp.Header, Body: resp.Body})
				return
			}
			buf = append(buf, b...)
			loop()
		})
	}
	loop()
}

// FetchSync is Fetch driving the simulation to completion.
func (in *Instance) FetchSync(method string, port int, path string, body []byte) HTTPResponse {
	var resp HTTPResponse
	done := false
	in.Fetch(method, port, path, body, func(r HTTPResponse) { resp = r; done = true })
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic(in.deadlockErr("FetchSync " + path).Error())
	}
	return resp
}

// FetchRemote sends the same logical request to a netsim remote host —
// the cloud path of the meme generator's dynamic routing.
func (in *Instance) FetchRemote(host, method, path string, body []byte, cb func(HTTPResponse)) {
	in.Main(func() {
		in.Net.Fetch(host, netsim.Request{Method: method, Path: path, Body: body}, func(r netsim.Response) {
			cb(HTTPResponse{Status: r.Status, Header: r.Header, Body: r.Body})
		})
	})
}

// FetchRemoteSync drives FetchRemote to completion.
func (in *Instance) FetchRemoteSync(host, method, path string, body []byte) HTTPResponse {
	var resp HTTPResponse
	done := false
	in.FetchRemote(host, method, path, body, func(r HTTPResponse) { resp = r; done = true })
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic(in.deadlockErr("FetchRemoteSync " + path).Error())
	}
	return resp
}
