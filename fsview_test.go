package browsix_test

import (
	"archive/zip"
	"bytes"
	"errors"
	"io/fs"
	"testing"
	"testing/fstest"

	browsix "repro"
	ifs "repro/internal/fs"
	"repro/internal/netsim"
)

// The acceptance gate for the io/fs facade: testing/fstest.TestFS must
// pass over every backend class — memfs, zipfs, httpfs (lazy network
// fetches driven by the facade), and overlay.

// facadeTree is the tree staged on every backend.
var facadeTree = map[string]string{
	"hello.txt":        "hello, facade\n",
	"sub/nested.txt":   "nested contents\n",
	"sub/deep/leaf.md": "# leaf\n",
	"empty.txt":        "",
}

func facadeExpected() []string {
	return []string{"hello.txt", "sub/nested.txt", "sub/deep/leaf.md", "empty.txt"}
}

func TestFSFacadeMemFS(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	v := in.FS()
	for p, body := range facadeTree {
		if err := v.MkdirAll(dirOf(p), 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", p, err)
		}
		if err := v.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatalf("write %s: %v", p, err)
		}
	}
	if err := fstest.TestFS(v, facadeExpected()...); err != nil {
		t.Fatal(err)
	}
}

func TestFSFacadeZipFS(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for p, body := range facadeTree {
		w, err := zw.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte(body))
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zfs, err := ifs.NewZipFS(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	in := browsix.Boot(browsix.Config{})
	if err := in.FS().MkdirAll("mnt", 0o755); err != nil {
		t.Fatal(err)
	}
	in.VFS.Mount("/mnt/zip", zfs)
	sub, err := in.FS().Sub("mnt/zip")
	if err != nil {
		t.Fatal(err)
	}
	if err := fstest.TestFS(sub.(*browsix.FSView), facadeExpected()...); err != nil {
		t.Fatal(err)
	}
}

// httpBackedInstance mounts facadeTree as an HTTP-backed file system at
// /mnt/http, served by a simulated remote host: every cold read through
// the facade is a lazy network fetch the drive loop must complete.
func httpBackedInstance(t *testing.T) (*browsix.Instance, fs.FS) {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	files := map[string][]byte{}
	sizes := map[string]int64{}
	for p, body := range facadeTree {
		files["/"+p] = []byte(body)
		sizes["/"+p] = int64(len(body))
	}
	in.Net.AddHost(netsim.FileHost("files.example.com", 5_000_000, 10, files))
	clock := func() int64 { return in.Sim.Now() }
	httpfs, err := ifs.NewHTTPFS(ifs.BuildIndex(sizes),
		&netsim.FSFetcher{Net: in.Net, HostNm: "files.example.com"}, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.FS().MkdirAll("mnt", 0o755); err != nil {
		t.Fatal(err)
	}
	in.VFS.Mount("/mnt/http", httpfs)
	sub, err := in.FS().Sub("mnt/http")
	if err != nil {
		t.Fatal(err)
	}
	return in, sub
}

func TestFSFacadeHTTPFS(t *testing.T) {
	_, sub := httpBackedInstance(t)
	if err := fstest.TestFS(sub, facadeExpected()...); err != nil {
		t.Fatal(err)
	}
}

func TestFSFacadeOverlay(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	clock := func() int64 { return in.Sim.Now() }

	// Lower: a read-only zip image of the shared tree.
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for p, body := range facadeTree {
		w, _ := zw.Create(p)
		w.Write([]byte(body))
	}
	zw.Close()
	zfs, err := ifs.NewZipFS(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	overlay := ifs.NewOverlayFS(ifs.NewMemFS(clock), zfs)
	if err := in.FS().MkdirAll("mnt", 0o755); err != nil {
		t.Fatal(err)
	}
	in.VFS.Mount("/mnt/ov", overlay)

	sub, err := in.FS().Sub("mnt/ov")
	if err != nil {
		t.Fatal(err)
	}
	v := sub.(*browsix.FSView)
	// Write through the facade into the upper layer, so the merged view
	// under test carries both layers.
	if err := v.WriteFile("upper.txt", []byte("upper layer\n"), 0o644); err != nil {
		t.Fatalf("overlay write: %v", err)
	}
	expected := append(facadeExpected(), "upper.txt")
	if err := fstest.TestFS(v, expected...); err != nil {
		t.Fatal(err)
	}
}

// TestFSFacadeWriteExtensions exercises the write-side surface end to
// end, including that the guest sees facade writes and vice versa.
func TestFSFacadeWriteExtensions(t *testing.T) {
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	v := in.FS()

	if err := v.MkdirAll("proj/a/b", 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	if err := v.WriteFile("proj/a/b/f.txt", []byte("one\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// The guest sees facade writes.
	res := in.RunCommand("cat /proj/a/b/f.txt")
	if res.Code != 0 || string(res.Stdout) != "one\n" {
		t.Fatalf("guest read: %d %q", res.Code, res.Stdout)
	}
	// Rename + ReadFile.
	if err := v.Rename("proj/a/b/f.txt", "proj/a/b/g.txt"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	data, err := v.ReadFile("proj/a/b/g.txt")
	if err != nil || string(data) != "one\n" {
		t.Fatalf("ReadFile after rename: %q %v", data, err)
	}
	if _, err := v.ReadFile("proj/a/b/f.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name still readable: %v", err)
	}
	// Symlink with a relative target, resolved by the guest and Stat.
	if err := v.Symlink("g.txt", "proj/a/b/link"); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	st, err := v.Stat("proj/a/b/link")
	if err != nil || st.Size() != 4 {
		t.Fatalf("stat through symlink: %+v %v", st, err)
	}
	// Glob over the (cached) listings.
	got, err := v.Glob("proj/a/b/*.txt")
	if err != nil || len(got) != 1 || got[0] != "proj/a/b/g.txt" {
		t.Fatalf("Glob: %v %v", got, err)
	}
	// Remove file and then the emptied directories.
	for _, p := range []string{"proj/a/b/link", "proj/a/b/g.txt", "proj/a/b", "proj/a"} {
		if err := v.Remove(p); err != nil {
			t.Fatalf("Remove %s: %v", p, err)
		}
	}
	if _, err := v.Stat("proj/a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("proj/a survived removal: %v", err)
	}
	// Invalid names are rejected with *fs.PathError.
	var perr *fs.PathError
	if err := v.WriteFile("/absolute", nil, 0o644); !errors.As(err, &perr) {
		t.Fatalf("absolute name accepted: %v", err)
	}
}

// TestFacadeGlobUsesReaddirCache: fs.Glob on the facade drives the VFS
// dentry-layer listing cache instead of re-hitting backends.
func TestFacadeGlobUsesReaddirCache(t *testing.T) {
	in, sub := httpBackedInstance(t)
	v := sub.(*browsix.FSView)
	if _, err := v.Glob("sub/*.txt"); err != nil {
		t.Fatal(err)
	}
	base := in.VFS.CacheStats()
	for i := 0; i < 4; i++ {
		if _, err := v.Glob("sub/*.txt"); err != nil {
			t.Fatal(err)
		}
	}
	s := in.VFS.CacheStats()
	if s.ReaddirHits <= base.ReaddirHits {
		t.Fatalf("glob never hit the readdir cache: %+v -> %+v", base, s)
	}
	if s.ReaddirMisses != base.ReaddirMisses {
		t.Fatalf("warm globs re-listed backends: %+v -> %+v", base, s)
	}
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "."
}
