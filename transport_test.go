package browsix_test

import (
	"testing"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/coreutils"
	"repro/internal/rt"
)

// Differential proof for the shell case studies: the asynchronous
// transport, the scalar synchronous transport, and the ring transport run
// the same pipelines to byte-identical results — and for each transport,
// the VFS caches (dentry + page cache behind the namei walker) change
// nothing observable: cache-on and cache-off runs are byte-identical too.
// The sync instances stage the coreutils on a synchronous runtime (wasm)
// so every utility syscall travels the path under test.

// installWasmCoreutils restages /usr/bin with sync-runtime builds.
func installWasmCoreutils(t *testing.T, in *browsix.Instance) {
	t.Helper()
	image := map[string][]byte{}
	for _, name := range coreutils.Names() {
		rt.InstallExecutable(image, "/usr/bin/"+name, name, rt.WasmKind)
	}
	for p, data := range image {
		if err := in.WriteFile(p, data); err != abi.OK {
			t.Fatalf("staging %s: %v", p, err)
		}
	}
}

func TestShellCaseStudiesIdenticalAcrossTransports(t *testing.T) {
	payload := make([]byte, 256*1024)
	for i := range payload {
		payload[i] = byte(i*31 + i>>9)
	}
	cmds := []string{
		"cat /data/fruit.txt | grep apple | sort | tee /data/apples.txt | wc -l",
		"cat /big.bin | wc -c",
		"sha1sum /big.bin",
		"echo hello vectored world | tee /out.txt | wc -w",
		"ls /usr/bin",
		"env",
		// Symlinks through the per-component walker: a relative target
		// resolved against its directory, then read back through it.
		"ln -s fruit.txt /data/link",
		"readlink /data/link",
		"cat /data/link",
		"ls /data",
	}
	type result struct {
		stdouts []string
		apples  string
		out     string
		ring    int64
	}
	run := func(name string, sync, disableRing, caches bool) result {
		in := browsix.Boot(browsix.Config{})
		browsix.InstallBase(in)
		in.Kernel.DisableRing = disableRing
		in.VFS.SetCaching(caches)
		if sync {
			installWasmCoreutils(t, in)
		}
		in.WriteFile("/data/fruit.txt", []byte("banana\napple\ncherry\napple pie\n"))
		in.WriteFile("/big.bin", payload)
		var r result
		for _, cmd := range cmds {
			res := in.RunCommand(cmd)
			if res.Code != 0 {
				t.Fatalf("%s: %q exited %d: %s", name, cmd, res.Code, res.Stderr)
			}
			r.stdouts = append(r.stdouts, string(res.Stdout))
		}
		apples, err := in.ReadFile("/data/apples.txt")
		if err != abi.OK {
			t.Fatalf("%s: apples.txt: %v", name, err)
		}
		out, err := in.ReadFile("/out.txt")
		if err != abi.OK {
			t.Fatalf("%s: out.txt: %v", name, err)
		}
		r.apples, r.out = string(apples), string(out)
		r.ring = in.Kernel.RingSyscalls.Load()
		return r
	}

	async := run("async", false, false, true)
	scalar := run("sync-scalar", true, true, true)
	ring := run("sync-ring", true, false, true)

	if scalar.ring != 0 {
		t.Errorf("scalar instance used the ring (%d calls)", scalar.ring)
	}
	if ring.ring == 0 {
		t.Error("ring instance never used the ring transport")
	}
	for i, cmd := range cmds {
		if async.stdouts[i] != scalar.stdouts[i] {
			t.Errorf("%q: async %q != sync-scalar %q", cmd, async.stdouts[i], scalar.stdouts[i])
		}
		if scalar.stdouts[i] != ring.stdouts[i] {
			t.Errorf("%q: sync-scalar %q != sync-ring %q", cmd, scalar.stdouts[i], ring.stdouts[i])
		}
	}
	if async.apples != scalar.apples || scalar.apples != ring.apples {
		t.Errorf("apples.txt diverged: %q / %q / %q", async.apples, scalar.apples, ring.apples)
	}
	if async.out != scalar.out || scalar.out != ring.out {
		t.Errorf("out.txt diverged: %q / %q / %q", async.out, scalar.out, ring.out)
	}
	if async.apples != "apple\napple pie\n" {
		t.Errorf("apples.txt content %q", async.apples)
	}
	if got := async.stdouts[7]; got != "fruit.txt\n" {
		t.Errorf("readlink output %q", got)
	}
	if got := async.stdouts[8]; got != "banana\napple\ncherry\napple pie\n" {
		t.Errorf("cat-through-symlink output %q", got)
	}

	// Cache-off runs for every transport: the VFS caches must be purely
	// an optimization — bytes identical everywhere.
	for _, cold := range []struct {
		name        string
		sync        bool
		disableRing bool
		warm        result
	}{
		{"async-nocache", false, false, async},
		{"sync-scalar-nocache", true, true, scalar},
		{"sync-ring-nocache", true, false, ring},
	} {
		got := run(cold.name, cold.sync, cold.disableRing, false)
		for i, cmd := range cmds {
			if got.stdouts[i] != cold.warm.stdouts[i] {
				t.Errorf("%s %q: cache-off %q != cache-on %q", cold.name, cmd, got.stdouts[i], cold.warm.stdouts[i])
			}
		}
		if got.apples != cold.warm.apples || got.out != cold.warm.out {
			t.Errorf("%s: file contents diverged between cache modes", cold.name)
		}
	}
}
