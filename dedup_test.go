package browsix_test

import (
	"archive/zip"
	"bytes"
	"fmt"
	"testing"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/fs"
)

// ---------------------------------------------------------------------------
// Content-addressed dedup at the system level: the same immutable base
// tree mounted into every tenant must cost ONE physical copy fleet-wide,
// while remaining invisible to program behaviour — byte-identical output
// and bit-identical virtual clocks with the tier on, off, or racing.
// ---------------------------------------------------------------------------

const (
	dedupTreeFiles    = 48
	dedupTreeFileSize = 40*1024 + 100 // 3 pages each (last one partial)
)

// dedupTreeZip builds the shared base image: a deterministic zip archive
// (the same bytes every run) that each tenant mounts read-only.
func dedupTreeZip(t testing.TB, nfiles, size int) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for i := 0; i < nfiles; i++ {
		w, err := zw.Create(fmt.Sprintf("tree/f%03d.dat", i))
		if err != nil {
			t.Fatalf("zip create: %v", err)
		}
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(i*131 + j*7 + j>>10)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatalf("zip write: %v", err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("zip close: %v", err)
	}
	return buf.Bytes()
}

// mountShare mounts the archive read-only at /share. Every caller gets
// its own ZipFS index over the SAME archive bytes, so identical pages
// faulted by different tenants dedup to one arena slot.
func mountShare(t testing.TB, in *browsix.Instance, archive []byte) {
	t.Helper()
	zfs, err := fs.NewZipFS(archive)
	if err != nil {
		t.Fatalf("zipfs: %v", err)
	}
	in.VFS.Mount("/share", zfs)
}

func dedupTreePath(i int) string {
	return fmt.Sprintf("/share/tree/f%03d.dat", i%dedupTreeFiles)
}

// TestDedupDifferential is the on/off ablation across all three syscall
// transports: disabling the content-addressed tier must change NOTHING
// observable — stdout, stderr, exit codes, and the virtual clock are
// bit-identical; only the physical footprint moves. This pins the
// design invariant that the dedup lookup happens after the backend read
// (hits and misses cost identical virtual time) and that quota is
// charged logically per reference.
func TestDedupDifferential(t *testing.T) {
	archive := dedupTreeZip(t, 12, dedupTreeFileSize)
	// repArchive holds a file of IDENTICAL pages: within one descriptor
	// the kernel grants the same shared slot repeatedly, the case that
	// once perturbed guest-side lease bookkeeping (and the clock).
	var repBuf bytes.Buffer
	zw := zip.NewWriter(&repBuf)
	w, err := zw.Create("rep.dat")
	if err != nil {
		t.Fatalf("zip create: %v", err)
	}
	if _, err := w.Write(bytes.Repeat(bytes.Repeat([]byte{0x5a}, fs.PageSize), 4)); err != nil {
		t.Fatalf("zip write: %v", err)
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("zip close: %v", err)
	}
	repArchive := repBuf.Bytes()
	cmds := []string{
		"sha1sum /share/tree/f000.dat /share/tree/f007.dat",
		"cat /share/tree/f001.dat | wc -c",
		"cat /share/tree/f002.dat /share/tree/f002.dat | wc -c", // warm reread
		"cat /rep/rep.dat | wc -c",                              // same slot granted 4x on one fd
		"sha1sum /rep/rep.dat",
		"ls /share/tree",
	}
	type result struct {
		outs  []string
		clock int64
	}
	run := func(name string, sync, disableRing, disableDedup bool) result {
		in := browsix.Boot(browsix.Config{DisableDedup: disableDedup})
		browsix.InstallBase(in)
		in.Kernel.DisableRing = disableRing
		if sync {
			installWasmCoreutils(t, in)
		}
		mountShare(t, in, archive)
		rfs, zerr := fs.NewZipFS(repArchive)
		if zerr != nil {
			t.Fatalf("rep zipfs: %v", zerr)
		}
		in.VFS.Mount("/rep", rfs)
		var r result
		for _, cmd := range cmds {
			res := in.RunCommand(cmd)
			if res.Code != 0 {
				t.Fatalf("%s: %q exited %d: %s", name, cmd, res.Code, res.Stderr)
			}
			r.outs = append(r.outs, string(res.Stdout)+"\x00"+string(res.Stderr))
		}
		if g, ret := in.Kernel.LeaseGrants.Load(), in.Kernel.LeaseReturns.Load(); g != ret {
			t.Fatalf("%s: leases leaked: %d granted, %d returned", name, g, ret)
		}
		if pins := in.VFS.CacheStats().PinnedPages; pins != 0 {
			t.Fatalf("%s: %d pages still pinned after commands", name, pins)
		}
		if cs := in.VFS.CacheStats(); disableDedup && cs.DedupStores != 0 {
			t.Fatalf("%s: dedup disabled but %d pages entered the shared tier", name, cs.DedupStores)
		} else if !disableDedup && cs.DedupStores == 0 {
			t.Fatalf("%s: dedup enabled but no pages entered the shared tier", name)
		}
		r.clock = in.Now()
		return r
	}

	transports := []struct {
		name              string
		sync, disableRing bool
	}{
		{"async", false, false},
		{"sync-scalar", true, true},
		{"sync-ring", true, false},
	}
	var ref result
	for ti, tr := range transports {
		on := run(tr.name+"/dedup", tr.sync, tr.disableRing, false)
		off := run(tr.name+"/nodedup", tr.sync, tr.disableRing, true)
		for i, cmd := range cmds {
			if on.outs[i] != off.outs[i] {
				t.Errorf("%s: %q output diverged with dedup off\non:  %q\noff: %q",
					tr.name, cmd, on.outs[i], off.outs[i])
			}
		}
		if on.clock != off.clock {
			t.Errorf("%s: virtual clock %dns with dedup, %dns without — sharing leaked into time",
				tr.name, on.clock, off.clock)
		}
		// And across transports the payload output agrees too.
		if ti == 0 {
			ref = on
		} else {
			for i, cmd := range cmds {
				if on.outs[i] != ref.outs[i] {
					t.Errorf("%q: %s output %q != %s output %q",
						cmd, tr.name, on.outs[i], transports[0].name, ref.outs[i])
				}
			}
		}
	}
}

// tenantTreeLoad is the resident-fleet workload: every tenant mounts the
// shared base image and reads all of it.
func tenantTreeLoad(t testing.TB, archive []byte, tenants int, disable bool) browsix.TenantLoad {
	return browsix.TenantLoad{
		Tenants:      tenants,
		DisableDedup: disable,
		Setup: func(i int, in *browsix.Instance) {
			mountShare(t, in, archive)
		},
		Workload: func(i int, in *browsix.Instance) {
			for f := 0; f < dedupTreeFiles; f++ {
				data, err := in.ReadFile(dedupTreePath(f))
				if err != abi.OK || len(data) != dedupTreeFileSize {
					t.Errorf("tenant %d: read %s: err=%v len=%d", i, dedupTreePath(f), err, len(data))
					return
				}
			}
		},
	}
}

// TestTenantDedupGuard is the CI acceptance guard: 16 resident tenants
// over one hot tree must share at >= 4x (they actually share at ~16x —
// every tenant's tree pages collapse to one copy), with near-perfect
// fairness and clean ledgers, and the dedup-off ablation must agree on
// every logical number while paying >= 4x the physical footprint.
func TestTenantDedupGuard(t *testing.T) {
	archive := dedupTreeZip(t, dedupTreeFiles, dedupTreeFileSize)
	const tenants = 16
	fl := &browsix.Fleet{Workers: 4}
	on := fl.RunTenants(tenantTreeLoad(t, archive, tenants, false))

	if on.Tenants != tenants || on.LogicalPages == 0 {
		t.Fatalf("harness sampled nothing: %+v", on)
	}
	if on.DedupFactor < 4 {
		t.Errorf("dedup factor %.2f at %d tenants, want >= 4", on.DedupFactor, tenants)
	}
	if on.Fairness < 0.95 {
		t.Errorf("Jain fairness %.4f, want >= 0.95", on.Fairness)
	}
	if on.MinTenantPages != on.MaxTenantPages {
		t.Errorf("identical tenants hold different footprints: min=%d max=%d",
			on.MinTenantPages, on.MaxTenantPages)
	}
	if on.PinnedSlots != 0 {
		t.Errorf("%d arena slots still pinned after teardown", on.PinnedSlots)
	}
	if on.SnapshotLeak != nil {
		t.Errorf("snapshot ledger: %v", on.SnapshotLeak)
	}
	if on.LeaseGrants != on.LeaseReturns {
		t.Errorf("leases leaked: %d granted, %d returned", on.LeaseGrants, on.LeaseReturns)
	}

	off := (&browsix.Fleet{Workers: 4}).RunTenants(tenantTreeLoad(t, archive, tenants, true))
	// Logical behaviour is untouched by the tier: same resident pages,
	// same virtual time, to the bit.
	if on.LogicalPages != off.LogicalPages {
		t.Errorf("logical pages moved with dedup: on=%d off=%d", on.LogicalPages, off.LogicalPages)
	}
	if on.VirtualNs != off.VirtualNs {
		t.Errorf("virtual time moved with dedup: on=%dns off=%dns", on.VirtualNs, off.VirtualNs)
	}
	// Physical footprint is where the win lives.
	if off.PhysicalPages < 4*on.PhysicalPages {
		t.Errorf("dedup saved less than 4x: %d physical pages on, %d off",
			on.PhysicalPages, off.PhysicalPages)
	}
	t.Logf("N=%d: %.1f pages/tenant on vs %.1f off (%.1fx dedup, fairness %.4f, arena %d KiB vs %d KiB)",
		tenants, on.PagesPerTenant, off.PagesPerTenant, on.DedupFactor, on.Fairness,
		on.ArenaBytes>>10, off.ArenaBytes>>10)
}

// TestTenantDedupWithSnapshotWarmup exercises the full stack at tenant
// scale: a sealed snapshot registry (image pages in the SAME index) plus
// per-tenant processes reading the shared tree through real syscalls.
func TestTenantDedupWithSnapshotWarmup(t *testing.T) {
	archive := dedupTreeZip(t, 8, dedupTreeFileSize)
	fl := &browsix.Fleet{
		Workers: 2,
		SnapshotWarmup: &browsix.SnapshotWarmup{
			Setup: browsix.InstallBase,
			Cmds:  []string{"echo warm"},
		},
	}
	var clocks [4]int64
	load := browsix.TenantLoad{
		Tenants: 4,
		Setup: func(i int, in *browsix.Instance) {
			browsix.InstallBase(in)
			mountShare(t, in, archive)
		},
		Workload: func(i int, in *browsix.Instance) {
			res := in.RunCommand("cat /share/tree/f001.dat /share/tree/f003.dat | wc -c")
			if res.Code != 0 {
				t.Errorf("tenant %d: wc exited %d: %s", i, res.Code, res.Stderr)
			}
			clocks[i] = in.Now()
		},
	}
	st := fl.RunTenants(load)
	if st.SnapshotLeak != nil {
		t.Errorf("snapshot ledger after teardown: %v", st.SnapshotLeak)
	}
	if st.LeaseGrants != st.LeaseReturns {
		t.Errorf("leases leaked: %d granted, %d returned", st.LeaseGrants, st.LeaseReturns)
	}
	if st.DedupFactor < 2 {
		t.Errorf("dedup factor %.2f with 4 tenants on one tree, want >= 2", st.DedupFactor)
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i] != clocks[0] {
			t.Errorf("tenant %d clock %dns != tenant 0 clock %dns (shard scheduling leaked into time)",
				i, clocks[i], clocks[0])
		}
	}
}

// BenchmarkTenantDedup is the headline scaling number: pages/tenant and
// the dedup factor at N=64 resident tenants on one hot tree.
func BenchmarkTenantDedup(b *testing.B) {
	archive := dedupTreeZip(b, dedupTreeFiles, dedupTreeFileSize)
	for i := 0; i < b.N; i++ {
		fl := &browsix.Fleet{}
		st := fl.RunTenants(tenantTreeLoad(b, archive, 64, false))
		if st.PinnedSlots != 0 || st.LeaseGrants != st.LeaseReturns {
			b.Fatalf("dirty teardown: %+v", st)
		}
		b.ReportMetric(st.PagesPerTenant, "pages/tenant")
		b.ReportMetric(st.DedupFactor, "dedupx")
		b.ReportMetric(st.Fairness, "fairness")
	}
}
