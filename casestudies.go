package browsix

import (
	"strings"

	"repro/internal/fs"
	"repro/internal/meme"
	"repro/internal/netsim"
	"repro/internal/rt"
	"repro/internal/tex"

	// Registers the `make` program (the LaTeX build driver).
	_ "repro/internal/mk"
)

// This file stages the paper's case studies onto an Instance: the LaTeX
// editor (§2), the meme generator (§5.1.1), and the terminal (§5.1.2).

// TexMode selects the Emscripten compilation mode for the TeX binaries
// (§2.2: the developer chooses at compile time; only programs that fork —
// GNU Make — require the Emterpreter).
type TexMode int

// TeX compilation modes.
const (
	// TexSync: pdflatex/bibtex as asm.js with synchronous syscalls
	// (Chrome-only in the paper; the ~3 s configuration).
	TexSync TexMode = iota
	// TexAsync: everything under the Emterpreter with asynchronous
	// syscalls (works in all browsers; the ~12 s configuration).
	TexAsync
)

// TexHostName is the netsim host serving the TeX Live tree.
const TexHostName = "texlive.example.com"

// InstallTexProject stages the LaTeX editor's world:
//
//   - a remote HTTP server carrying the TeX Live distribution,
//   - an HTTP-backed, lazily-fetched file system mounted (under an
//     overlay, with locking) at /usr/local/texlive,
//   - pdflatex, bibtex (mode-dependent runtime) and make (always
//     Emterpreter — it forks) in /usr/bin,
//   - the user's project in /proj: main.tex, main.bib, Makefile.
//
// It returns the HTTPFS so callers can observe lazy-fetch behaviour.
func InstallTexProject(in *Instance, cfg tex.TreeConfig, mode TexMode, docTex, docBib string) *fs.HTTPFS {
	tree := tex.BuildTree(cfg)
	in.Net.AddHost(netsim.FileHost(TexHostName, 30_000_000, 12, tree)) // 30ms RTT, ~80MB/s

	sizes := map[string]int64{}
	for p, b := range tree {
		sizes[p] = int64(len(b))
	}
	clock := func() int64 { return in.Sim.Now() }
	httpfs, err := fs.NewHTTPFS(fs.BuildIndex(sizes),
		&netsim.FSFetcher{Net: in.Net, HostNm: TexHostName}, clock)
	if err != nil {
		panic("browsix: tex index: " + err.Error())
	}
	overlay := fs.NewOverlayFS(fs.NewMemFS(clock), httpfs)
	mustMkdirAll(in, "/usr/local")
	in.VFS.Mount(tex.TexRoot, overlay)

	texKind := rt.EmSyncKind
	if mode == TexAsync {
		texKind = rt.EmAsyncKind
	}
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/pdflatex", "pdflatex", texKind)
	rt.InstallExecutable(image, "/usr/bin/bibtex", "bibtex", texKind)
	// make forks, so it is always the Emterpreter build (§2.2).
	rt.InstallExecutable(image, "/usr/bin/make", "make", rt.EmAsyncKind)
	stage(in, image)

	mustMkdirAll(in, "/proj")
	mustWrite(in, "/proj/main.tex", []byte(docTex))
	mustWrite(in, "/proj/main.bib", []byte(docBib))
	mustWrite(in, "/proj/Makefile", []byte(tex.ProjectMakefile()))
	return httpfs
}

// BuildPDF is the editor's "Build PDF" button: run make in /proj through
// the process-handle API, capturing output; returns exit code and
// combined log.
func (in *Instance) BuildPDF() (int, string) {
	p, err := in.Start(Spec{Argv: []string{"/usr/bin/make"}, Dir: "/proj"})
	if err != nil {
		return 127, err.Error()
	}
	code, werr := p.Wait()
	if werr != nil {
		return 127, werr.Error()
	}
	out := p.stdout.take()
	errOut := p.stderr.take()
	return code, string(out) + string(errOut)
}

// MemeHostName is the remote meme server of §5.2's comparison.
const MemeHostName = "meme.example.com"

// InstallMeme stages the meme generator: templates + font in the shared
// file system, the GopherJS-compiled server in /usr/bin, and the remote
// (native) twin on the simulated network. rttNs is the round trip to the
// remote server (the paper compares a same-machine server and EC2).
func InstallMeme(in *Instance, rttNs int64) {
	for p, data := range meme.StageFiles() {
		mustMkdirAll(in, parentDir(p))
		mustWrite(in, p, data)
	}
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/meme-server", "meme-server", rt.GopherJSKind)
	stage(in, image)
	in.Net.AddHost(meme.NewRemoteHost(MemeHostName, rttNs, 18))
}

// StartMemeServer launches the in-Browsix server and waits (via the
// socket-notification API) until it is listening, returning its pid.
func (in *Instance) StartMemeServer() int { return in.StartMemeServerArgs() }

// MemeRoute decides where a generation request goes: the paper's policy
// routes to the in-Browsix server when the network is inaccessible or the
// device is powerful (a desktop), otherwise to the cloud.
func (in *Instance) MemeRoute(desktop bool) string {
	if in.Net.Offline || desktop {
		return "browsix"
	}
	return "remote"
}

// GenerateMeme sends the request along the chosen route.
func (in *Instance) GenerateMeme(route string, body []byte) HTTPResponse {
	if route == "browsix" {
		return in.FetchSync("POST", meme.Port, "/api/meme", body)
	}
	return in.FetchRemoteSync(MemeHostName, "POST", "/api/meme", body)
}

// ---------------------------------------------------------------------------
// Terminal (§5.1.2).
// ---------------------------------------------------------------------------

// Terminal drives an interactive dash session — the Browsix terminal
// case study, layered on the Start(Spec{Interactive: true}) handle. The
// shell's output is routed into the terminal's own buffers (Spec sinks),
// so external reads on the process handle cannot disturb Exec's
// prompt-tracking.
type Terminal struct {
	in     *Instance
	proc   *Process
	stdout strings.Builder
	stderr strings.Builder
}

// NewTerminal starts /bin/dash reading from an interactive stdin.
func (in *Instance) NewTerminal() *Terminal {
	t := &Terminal{in: in}
	p, err := in.Start(Spec{
		Argv:        []string{"/bin/dash"},
		Dir:         "/",
		Interactive: true,
		Stdout:      &t.stdout,
		Stderr:      &t.stderr,
	})
	if err != nil {
		panic("browsix: terminal: " + err.Error())
	}
	t.proc = p
	// Wait for the first prompt.
	in.Sim.RunUntil(func() bool { return strings.Contains(t.stderr.String(), "$ ") || p.Exited() })
	return t
}

// Process returns the underlying process handle (pid, Signal, Wait).
// Its output streams are empty: the terminal's sinks receive them.
func (t *Terminal) Process() *Process { return t.proc }

// Exec types one line into the shell and returns the stdout it produced,
// running the simulation until the next prompt (or shell exit).
func (t *Terminal) Exec(line string) string {
	mark := t.stdout.Len()
	prompts := strings.Count(t.stderr.String(), "$ ")
	t.proc.WriteStdin([]byte(line + "\n"))
	t.in.Sim.RunUntil(func() bool {
		return t.proc.Exited() || strings.Count(t.stderr.String(), "$ ") > prompts
	})
	return t.stdout.String()[mark:]
}

// Close ends the session (EOF on stdin) and waits for exit.
func (t *Terminal) Close() int {
	t.proc.CloseStdin()
	code, err := t.proc.Wait()
	if err != nil {
		panic(err.Error())
	}
	return code
}

// Exited reports whether the shell has exited.
func (t *Terminal) Exited() bool { return t.proc.Exited() }

// Code returns the shell's exit code once exited.
func (t *Terminal) Code() int { return t.proc.ExitCode() }

// ---------------------------------------------------------------------------
// staging helpers
// ---------------------------------------------------------------------------

func mustMkdirAll(in *Instance, p string) {
	name := strings.TrimPrefix(p, "/")
	if name == "" {
		return // "/" always exists
	}
	if err := in.FS().MkdirAll(name, 0o755); err != nil {
		panic("browsix: mkdir " + p + ": " + err.Error())
	}
}

func mustWrite(in *Instance, p string, data []byte) {
	if err := in.FS().WriteFile(strings.TrimPrefix(p, "/"), data, 0o644); err != nil {
		panic("browsix: write " + p + ": " + err.Error())
	}
}

func stage(in *Instance, image map[string][]byte) {
	for p, data := range image {
		mustMkdirAll(in, parentDir(p))
		mustWrite(in, p, data)
	}
}

func parentDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return "/"
	}
	return p[:i]
}
