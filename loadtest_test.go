package browsix_test

import (
	"archive/zip"
	"bytes"
	"crypto/sha1"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	browsix "repro"
	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/httpx"
	"repro/internal/meme"
	"repro/internal/netsim"
	"repro/internal/posix"
	"repro/internal/rt"
)

// Load tests for the event-driven HTTP server: a deterministic client
// swarm drives the meme server through kernel-level connections, and the
// serial one-request-per-connection server is the ablation baseline.

// bootMeme boots an instance with the meme server staged. sync restages
// the server as a wasm executable so its syscalls travel the synchronous
// transport (scalar when disableRing, ring otherwise).
func bootMemeLoad(t testing.TB, sync, disableRing bool) *browsix.Instance {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	browsix.InstallMeme(in, 40_000_000)
	in.Kernel.DisableRing = disableRing
	if sync {
		image := map[string][]byte{}
		rt.InstallExecutable(image, "/usr/bin/meme-server", "meme-server", rt.WasmKind)
		for p, b := range image {
			if err := in.WriteFile(p, b); err != abi.OK {
				t.Fatalf("staging %s: %v", p, err)
			}
		}
	}
	return in
}

// healthSwarm builds the standard saturation workload: every request is
// GET /healthz (no handler CPU), so syscall economics dominate and the
// event loop's fewer-syscalls-per-request advantage is what's measured.
func healthSwarm(clients, perClient int, keepAlive bool) *netsim.Swarm {
	return &netsim.Swarm{
		Clients:   clients,
		PerClient: perClient,
		Seed:      0xb10c_ab1e,
		MeanGapNs: 2_000_000,
		KeepAlive: keepAlive,
		Request: func(client, seq int) *httpx.Request {
			return &httpx.Request{Method: "GET", Path: "/healthz"}
		},
	}
}

// TestMemeServerLoadGuard is the CI throughput guard: under a
// 1000-client keep-alive swarm the event-loop server must complete at
// least 2x the requests/sec (virtual time) of the serial
// Connection-close baseline.
func TestMemeServerLoadGuard(t *testing.T) {
	run := func(serial bool, s *netsim.Swarm) netsim.LoadReport {
		in := bootMemeLoad(t, true, false)
		var args []string
		if serial {
			args = append(args, "-serial")
		}
		in.StartMemeServerArgs(args...)
		bad := 0
		s.OnResponse = func(_, _ int, resp *httpx.Response) {
			if resp.Status != 200 || string(resp.Body) != "ok" {
				bad++
			}
		}
		rep := browsix.RunSwarm(in, s, meme.Port)
		if bad != 0 {
			t.Errorf("serial=%v: %d responses were not 200 ok", serial, bad)
		}
		return rep
	}
	// The event loop carries the full 1000-client keep-alive swarm, open
	// loop so backlogged clients pipeline onto their connections (the
	// batching the event loop is built to exploit). The serial baseline
	// cannot even accept that workload — Connection: close forbids
	// pipelining and its backlog-16 funnel collapses into refusal storms
	// at 1000 clients — so it gets a small closed-loop swarm it serves
	// cleanly: generous to the baseline, since RPS under saturation
	// measures server capacity either way.
	evSwarm := healthSwarm(1000, 3, true)
	evSwarm.OpenLoop = true
	serSwarm := healthSwarm(32, 3, false)
	serSwarm.MeanGapNs = 20_000_000
	ev := run(false, evSwarm)
	ser := run(true, serSwarm)
	t.Logf("event-loop: %+v", ev)
	t.Logf("serial:     %+v", ser)
	if ev.Requests != 3000 || ev.Errors != 0 {
		t.Errorf("event loop dropped requests: %+v", ev)
	}
	if ser.Requests != 96 || ser.Errors != 0 {
		t.Errorf("serial baseline dropped requests: %+v", ser)
	}
	if ser.RPSx1000 <= 0 {
		t.Fatalf("serial baseline measured nothing: %+v", ser)
	}
	if ev.RPSx1000 < 2*ser.RPSx1000 {
		t.Errorf("event loop %.1f req/s < 2x serial %.1f req/s",
			float64(ev.RPSx1000)/1000, float64(ser.RPSx1000)/1000)
	}
}

// memeMixSwarm exercises all three routes (templates listing, healthz,
// CPU-heavy meme generation) with keep-alive reuse, recording every
// response body hash by (client, seq) for cross-run comparison.
func memeMixSwarm(outcomes [][]string) *netsim.Swarm {
	return &netsim.Swarm{
		Clients:   8,
		PerClient: 3,
		Seed:      77,
		MeanGapNs: 5_000_000,
		KeepAlive: true,
		Request: func(client, seq int) *httpx.Request {
			switch seq {
			case 0:
				return &httpx.Request{Method: "GET", Path: "/api/templates"}
			case 1:
				body := fmt.Sprintf(`{"template":"doge","top":"client %d","bottom":"seq %d"}`, client, seq)
				return &httpx.Request{Method: "POST", Path: "/api/meme", Body: []byte(body)}
			default:
				return &httpx.Request{Method: "GET", Path: "/healthz"}
			}
		},
		OnResponse: func(client, seq int, resp *httpx.Response) {
			outcomes[client][seq] = fmt.Sprintf("%d:%x", resp.Status, sha1.Sum(resp.Body))
		},
	}
}

// TestSwarmDeterminismAcrossTransports pins the determinism contract:
// per transport, repeated runs produce bit-equal load reports (every
// field, percentiles included); across transports, every (client, seq)
// response is byte-identical — same status, same body — even though
// virtual timings (and so percentiles) legitimately differ.
func TestSwarmDeterminismAcrossTransports(t *testing.T) {
	type result struct {
		rep      netsim.LoadReport
		outcomes [][]string
	}
	run := func(sync, disableRing bool) result {
		in := bootMemeLoad(t, sync, disableRing)
		in.StartMemeServerArgs()
		outcomes := make([][]string, 8)
		for i := range outcomes {
			outcomes[i] = make([]string, 3)
		}
		s := memeMixSwarm(outcomes)
		rep := browsix.RunSwarm(in, s, meme.Port)
		return result{rep, outcomes}
	}
	transports := []struct {
		name        string
		sync        bool
		disableRing bool
	}{
		{"async", false, false},
		{"sync-scalar", true, true},
		{"sync-ring", true, false},
	}
	var ref result
	for ti, tr := range transports {
		a := run(tr.sync, tr.disableRing)
		b := run(tr.sync, tr.disableRing)
		if a.rep != b.rep {
			t.Errorf("%s: repeated runs diverged\nrun1: %+v\nrun2: %+v", tr.name, a.rep, b.rep)
		}
		if a.rep.Requests != 24 || a.rep.Errors != 0 {
			t.Errorf("%s: %+v", tr.name, a.rep)
		}
		if ti == 0 {
			ref = a
			continue
		}
		for c := range a.outcomes {
			for s := range a.outcomes[c] {
				if a.outcomes[c][s] != ref.outcomes[c][s] {
					t.Errorf("%s client %d seq %d: %s != %s (%s)",
						tr.name, c, s, a.outcomes[c][s], ref.outcomes[c][s], transports[0].name)
				}
			}
		}
	}
}

// memeImageZip packs the meme server's whole /usr subtree — executable,
// templates, font — into one deterministic archive every tenant mounts
// read-only, so the fleet's content-addressed tier can collapse the
// tenants' identical base image to one arena copy.
func memeImageZip(t testing.TB) []byte {
	t.Helper()
	files := meme.StageFiles()
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/meme-server", "meme-server", rt.GopherJSKind)
	for p, b := range image {
		files[p] = b
	}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, p := range paths {
		w, err := zw.Create(strings.TrimPrefix(p, "/usr/"))
		if err != nil {
			t.Fatalf("zip create: %v", err)
		}
		if _, err := w.Write(files[p]); err != nil {
			t.Fatalf("zip write: %v", err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatalf("zip close: %v", err)
	}
	return buf.Bytes()
}

// TestMemeFleetTenantSwarms composes the load harness with the fleet:
// N meme-server tenants each serve their own swarm, sharded across host
// workers, and — the tenants being identical — every tenant's load
// report must come out bit-equal. The shared arena still dedups the
// tenants' identical binaries and assets underneath the serving.
func TestMemeFleetTenantSwarms(t *testing.T) {
	const tenants = 4
	archive := memeImageZip(t)
	reports := make([]netsim.LoadReport, tenants)
	fl := &browsix.Fleet{Workers: 2}
	st := fl.RunTenants(browsix.TenantLoad{
		Tenants: tenants,
		Setup: func(i int, in *browsix.Instance) {
			zfs, err := fs.NewZipFS(archive)
			if err != nil {
				t.Errorf("zipfs: %v", err)
				return
			}
			in.VFS.Mount("/usr", zfs)
		},
		Workload: func(i int, in *browsix.Instance) {
			pid := in.StartMemeServerArgs()
			s := healthSwarm(50, 2, true)
			reports[i] = browsix.RunSwarm(in, s, meme.Port)
			in.Kill(pid, abi.SIGKILL)
			in.Run()
		},
	})
	if st.Tenants != tenants {
		t.Fatalf("harness ran %d tenants", st.Tenants)
	}
	if reports[0].Requests != 100 || reports[0].Errors != 0 {
		t.Errorf("tenant 0 report: %+v", reports[0])
	}
	for i := 1; i < tenants; i++ {
		if reports[i] != reports[0] {
			t.Errorf("tenant %d report diverged:\n0: %+v\n%d: %+v", i, reports[0], i, reports[i])
		}
	}
	if st.DedupFactor < 2 {
		t.Errorf("identical meme tenants dedup at %.2fx, want >= 2", st.DedupFactor)
	}
	if st.PinnedSlots != 0 {
		t.Errorf("%d arena slots still pinned after teardown", st.PinnedSlots)
	}
}

// ---------------------------------------------------------------------------
// Socket lifecycle edges, differentially across transports.
// ---------------------------------------------------------------------------

const sockEdgePort = 7070

func init() {
	// x-sockedge exercises the socket edge cases from inside a process —
	// non-blocking accept on an empty backlog, poll probe and timeout,
	// park-until-connect, batched accept of a burst, half-close drain to
	// EOF, and non-blocking read/write EAGAIN — printing every outcome so
	// the transports can be compared byte for byte.
	posix.Register(&posix.Program{Name: "x-sockedge", Main: func(p posix.Proc) int {
		out := func(f string, a ...any) { posix.Fprintf(p, abi.Stdout, f, a...) }
		lfd, err := p.Socket()
		if err != abi.OK {
			return 1
		}
		if p.Bind(lfd, sockEdgePort) != abi.OK {
			return 2
		}
		if p.Listen(lfd, 2) != abi.OK {
			return 3
		}
		if p.Setfl(lfd, abi.O_NONBLOCK) != abi.OK {
			return 4
		}
		if _, err := p.Accept(lfd); err != abi.EAGAIN {
			return 5
		}
		out("accept-empty=%d\n", abi.EAGAIN)
		fds := []abi.Pollfd{{Fd: int32(lfd), Events: abi.POLLIN}}
		n, _ := p.Poll(fds, 0)
		out("probe-ready=%d\n", n)
		n, _ = p.Poll(fds, 2_000_000)
		out("timed-ready=%d\n", n)
		// Park until the test side's 4-dial burst (backlog 2: two queue,
		// two are refused on the dialer's side).
		n, _ = p.Poll(fds, -1)
		out("wake-ready=%d revents=%d\n", n, fds[0].Revents)
		got, err := p.AcceptBatch(lfd, 8)
		if err != abi.OK {
			return 6
		}
		out("batch=%d\n", len(got))
		if len(got) != 2 {
			return 7
		}
		// Peer 0 wrote then closed: drain the tail bytes, then EOF.
		b, err := p.Read(got[0], 64)
		out("read0=%q err=%d\n", string(b), err)
		b, err = p.Read(got[0], 64)
		out("read0-eof len=%d err=%d\n", len(b), err)
		// Peer 1 wrote and stays open: drain, then non-blocking EAGAIN,
		// then fill the send pipe — short write, then EAGAIN.
		b, err = p.Read(got[1], 64)
		out("read1=%q err=%d\n", string(b), err)
		_, err = p.Read(got[1], 64)
		out("read1-again=%d\n", err)
		nw, err := p.Write(got[1], make([]byte, core.PipeCap+4096))
		out("write1=%d err=%d\n", nw, err)
		nw, err = p.Write(got[1], []byte("x"))
		out("write1-full=%d err=%d\n", nw, err)
		p.Close(got[0])
		p.Close(got[1])
		p.Close(lfd)
		return 0
	}})
}

// runSockEdge runs the probe under one transport and returns its stdout
// plus the dial outcomes observed on the kernel (client) side.
func runSockEdge(t *testing.T, sync, disableRing bool) (string, []abi.Errno) {
	t.Helper()
	in := browsix.Boot(browsix.Config{})
	browsix.InstallBase(in)
	in.Kernel.DisableRing = disableRing
	kind := rt.GopherJSKind
	if sync {
		kind = rt.WasmKind
	}
	image := map[string][]byte{}
	rt.InstallExecutable(image, "/usr/bin/sockedge", "x-sockedge", kind)
	for p, b := range image {
		if err := in.WriteFile(p, b); err != abi.OK {
			t.Fatalf("staging %s: %v", p, err)
		}
	}
	var dialErrs []abi.Errno
	in.OnListen(sockEdgePort, func(int) {
		// Fire the burst 500ms after listen: far past the probe's
		// pre-park steps on every transport, and atomic in virtual time
		// so backlog occupancy is identical everywhere.
		in.Sim.PostDelay(in.Browser.Main.Sched(), 500_000_000, func() {
			for i := 0; i < 4; i++ {
				i := i
				in.Kernel.Connect(sockEdgePort, func(c *core.KernelConn, err abi.Errno) {
					dialErrs = append(dialErrs, err)
					if err != abi.OK {
						return
					}
					switch i {
					case 0:
						c.Write([]byte("alpha"), func(int, abi.Errno) {})
						c.Close()
					case 1:
						c.Write([]byte("beta"), func(int, abi.Errno) {})
					}
				})
			}
		})
	})
	proc, err := in.Start(browsix.Spec{Argv: []string{"/usr/bin/sockedge"}})
	if err != nil {
		t.Fatalf("start sockedge: %v", err)
	}
	code, werr := proc.Wait()
	if werr != nil || code != 0 {
		stdout, _ := io.ReadAll(proc.Stdout())
		stderr, _ := io.ReadAll(proc.Stderr())
		t.Fatalf("sockedge exited %d (%v)\nstdout: %s\nstderr: %s", code, werr, stdout, stderr)
	}
	stdout, _ := io.ReadAll(proc.Stdout())
	return string(stdout), dialErrs
}

// TestSocketEdgesAcrossTransports runs the probe under the async,
// scalar-sync, and ring transports: every edge-case outcome — printed by
// the probe and observed by the dialers — must be byte-identical.
func TestSocketEdgesAcrossTransports(t *testing.T) {
	want := fmt.Sprintf(
		"accept-empty=%d\nprobe-ready=0\ntimed-ready=0\n"+
			"wake-ready=1 revents=%d\nbatch=2\n"+
			"read0=%q err=0\nread0-eof len=0 err=0\n"+
			"read1=%q err=0\nread1-again=%d\n"+
			"write1=%d err=0\nwrite1-full=0 err=%d\n",
		abi.EAGAIN, abi.POLLIN, "alpha", "beta", abi.EAGAIN, core.PipeCap, abi.EAGAIN)
	wantDials := []abi.Errno{abi.OK, abi.OK, abi.ECONNREFUSED, abi.ECONNREFUSED}
	for _, tr := range []struct {
		name        string
		sync        bool
		disableRing bool
	}{
		{"async", false, false},
		{"sync-scalar", true, true},
		{"sync-ring", true, false},
	} {
		out, dials := runSockEdge(t, tr.sync, tr.disableRing)
		if out != want {
			t.Errorf("%s stdout:\n%s\nwant:\n%s", tr.name, out, want)
		}
		if len(dials) != len(wantDials) {
			t.Errorf("%s: dial outcomes %v", tr.name, dials)
			continue
		}
		for i, e := range dials {
			if e != wantDials[i] {
				t.Errorf("%s: dial %d: %v, want %v", tr.name, i, e, wantDials[i])
			}
		}
	}
}
