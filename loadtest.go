package browsix

import (
	"repro/internal/abi"
	"repro/internal/core"
	"repro/internal/meme"
	"repro/internal/netsim"
)

// Load-testing harness: wires the deterministic client swarm
// (internal/netsim) onto an in-Browsix server through kernel-level
// connections, so thousands of simulated browser-side clients can drive
// one server process entirely in virtual time.

// DialPort adapts kernel connections to port into a netsim.Dialer; the
// returned connections satisfy netsim.Conn directly.
func DialPort(in *Instance, port int) netsim.Dialer {
	return func(cb func(netsim.Conn, abi.Errno)) {
		in.Kernel.Connect(port, func(c *core.KernelConn, err abi.Errno) {
			if err != abi.OK {
				cb(nil, err)
				return
			}
			cb(c, abi.OK)
		})
	}
}

// RunSwarm drives a client swarm against a port inside the instance and
// returns its load report. The report is a pure function of the swarm
// config and the instance's virtual-time behaviour: repeated runs are
// bit-identical.
func RunSwarm(in *Instance, s *netsim.Swarm, port int) netsim.LoadReport {
	var rep netsim.LoadReport
	done := false
	in.Main(func() {
		s.Start(in.Sim, DialPort(in, port), func(r netsim.LoadReport) {
			rep = r
			done = true
		})
	})
	if !in.Sim.RunUntil(func() bool { return done }) {
		panic("browsix: swarm never completed")
	}
	return rep
}

// StartMemeServerArgs launches the in-Browsix meme server with extra
// argv (e.g. "-serial" for the one-request-per-connection ablation
// baseline) and waits until it is listening.
func (in *Instance) StartMemeServerArgs(args ...string) int {
	listening := false
	in.OnListen(meme.Port, func(int) { listening = true })
	argv := append([]string{"/usr/bin/meme-server"}, args...)
	p, err := in.Start(Spec{Argv: argv})
	if err != nil {
		panic("browsix: meme server: " + err.Error())
	}
	if !in.Sim.RunUntil(func() bool { return listening }) {
		panic("browsix: meme server never listened")
	}
	return p.Pid
}
